//! Rule-action planning and execution (§5).
//!
//! At fire time the data matching the rule condition sits in the P-node.
//! Each command of the (query-modified, see [`ariel_query::modify_action`])
//! action is resolved against the P-node columns, planned — the plan always
//! begins with a `PnodeScan` for shared variables — and executed.
//!
//! Two planning strategies (§5.3):
//! * **always-reoptimize** (the paper's implementation and our default):
//!   plans are produced fresh at every firing, so they always reflect
//!   current relation sizes and indexes;
//! * **cached** ("pre-planning"): resolution and plan are computed at first
//!   firing and reused, trading optimality for planning cost — the PLAN
//!   ablation measures this trade.

use ariel_query::{
    execute_with_plan, plan_command, Change, Command, Notification, Plan, Pnode, QueryError,
    QueryResult, RCommand, Resolver,
};
use ariel_storage::Catalog;
use std::collections::HashMap;

#[derive(Debug)]
struct CachedPlan {
    rcmd: RCommand,
    plan: Option<Plan>,
}

/// Outcome of running one rule action.
#[derive(Debug, Default)]
pub struct ActionOutcome {
    /// Physical changes the action applied (one transition's worth).
    pub changes: Vec<Change>,
    /// Notifications the action emitted (`notify` commands).
    pub notifications: Vec<Notification>,
    /// True if the action executed `halt`.
    pub halted: bool,
}

/// The rule-action planner.
#[derive(Debug)]
pub struct ActionPlanner {
    cache_enabled: bool,
    cache: HashMap<(u64, usize), CachedPlan>,
}

impl ActionPlanner {
    /// `cache_enabled = false` is the paper's always-reoptimize strategy.
    pub fn new(cache_enabled: bool) -> Self {
        ActionPlanner {
            cache_enabled,
            cache: HashMap::new(),
        }
    }

    /// Whether plan caching (pre-planning) is on.
    pub fn cache_enabled(&self) -> bool {
        self.cache_enabled
    }

    /// Drop cached plans for a rule (deactivation, schema changes).
    pub fn invalidate(&mut self, rule_key: u64) {
        self.cache.retain(|(r, _), _| *r != rule_key);
    }

    /// Drop every cached plan.
    pub fn invalidate_all(&mut self) {
        self.cache.clear();
    }

    /// Execute a rule's action over its matched P-node data.
    pub fn execute_action(
        &mut self,
        rule_key: u64,
        action: &[Command],
        pnode: &Pnode,
        catalog: &mut Catalog,
    ) -> QueryResult<ActionOutcome> {
        let mut out = ActionOutcome::default();
        for (idx, cmd) in action.iter().enumerate() {
            match cmd {
                Command::Halt => {
                    out.halted = true;
                    break;
                }
                Command::Append { .. }
                | Command::Delete { .. }
                | Command::Replace { .. }
                | Command::Retrieve { .. }
                | Command::Notify { .. }
                | Command::DeletePrimed { .. }
                | Command::ReplacePrimed { .. } => {
                    let result = if self.cache_enabled {
                        match self.cache.get(&(rule_key, idx)) {
                            Some(cached) => execute_with_plan(
                                &cached.rcmd,
                                cached.plan.as_ref(),
                                catalog,
                                Some(pnode),
                            )?,
                            None => {
                                let rcmd =
                                    Resolver::with_pnode(catalog, pnode).resolve_command(cmd)?;
                                let plan = plan_command(&rcmd, catalog, Some(pnode))?;
                                let r =
                                    execute_with_plan(&rcmd, plan.as_ref(), catalog, Some(pnode))?;
                                self.cache
                                    .insert((rule_key, idx), CachedPlan { rcmd, plan });
                                r
                            }
                        }
                    } else {
                        // always-reoptimize: resolve, plan and run fresh
                        let rcmd = Resolver::with_pnode(catalog, pnode).resolve_command(cmd)?;
                        let plan = plan_command(&rcmd, catalog, Some(pnode))?;
                        execute_with_plan(&rcmd, plan.as_ref(), catalog, Some(pnode))?
                    };
                    out.changes.extend(result.changes);
                    out.notifications.extend(result.notifications);
                }
                other => {
                    return Err(QueryError::Semantic(format!(
                        "`{}` is not allowed in a rule action",
                        other.kind_name()
                    )));
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ariel_query::{modify_action, parse_command, BoundVar, PnodeCol};
    use ariel_storage::{AttrType, Schema, Tuple, Value};
    use std::collections::HashSet;

    fn setup() -> (Catalog, Pnode) {
        let mut cat = Catalog::new();
        let emp = cat
            .create(
                "emp",
                Schema::of(&[("name", AttrType::Str), ("sal", AttrType::Float)]),
            )
            .unwrap();
        cat.create("watch", Schema::of(&[("who", AttrType::Str)]))
            .unwrap();
        let t1 = emp
            .borrow_mut()
            .insert(vec!["bob".into(), 50_000.0.into()])
            .unwrap();
        let t2 = emp
            .borrow_mut()
            .insert(vec!["sue".into(), 60_000.0.into()])
            .unwrap();
        let mut pnode = Pnode::new(vec![PnodeCol {
            var: "emp".into(),
            rel: "emp".into(),
            schema: emp.borrow().schema().clone(),
            has_prev: false,
        }]);
        for tid in [t1, t2] {
            let t = emp.borrow().get(tid).cloned().unwrap();
            pnode.push(vec![BoundVar::plain(tid, t)]);
        }
        (cat, pnode)
    }

    fn action(src: &str) -> Vec<Command> {
        let cmd = parse_command(src).unwrap();
        let shared: HashSet<String> = HashSet::from(["emp".to_string()]);
        match cmd {
            Command::Block(cmds) => modify_action(&cmds, &shared),
            single => modify_action(&[single], &shared),
        }
    }

    #[test]
    fn append_binds_pnode_rows() {
        let (mut cat, pnode) = setup();
        let mut planner = ActionPlanner::new(false);
        let out = planner
            .execute_action(
                1,
                &action("append watch (who = emp.name)"),
                &pnode,
                &mut cat,
            )
            .unwrap();
        assert_eq!(out.changes.len(), 2, "one append per P-node row");
        assert_eq!(cat.get("watch").unwrap().borrow().len(), 2);
        assert!(!out.halted);
    }

    #[test]
    fn primed_replace_updates_through_tids() {
        let (mut cat, pnode) = setup();
        let mut planner = ActionPlanner::new(false);
        let out = planner
            .execute_action(1, &action("replace emp (sal = 30000)"), &pnode, &mut cat)
            .unwrap();
        assert_eq!(out.changes.len(), 2);
        let emp = cat.get("emp").unwrap();
        assert!(emp
            .borrow()
            .scan()
            .all(|(_, t)| t.get(1) == &Value::Float(30_000.0)));
    }

    #[test]
    fn primed_delete_removes_bound_tuples() {
        let (mut cat, pnode) = setup();
        let mut planner = ActionPlanner::new(false);
        let out = planner
            .execute_action(1, &action("delete emp"), &pnode, &mut cat)
            .unwrap();
        assert_eq!(out.changes.len(), 2);
        assert!(cat.get("emp").unwrap().borrow().is_empty());
    }

    #[test]
    fn halt_stops_remaining_commands() {
        let (mut cat, pnode) = setup();
        let mut planner = ActionPlanner::new(false);
        let out = planner
            .execute_action(1, &action("do halt delete emp end"), &pnode, &mut cat)
            .unwrap();
        assert!(out.halted);
        assert_eq!(
            cat.get("emp").unwrap().borrow().len(),
            2,
            "delete never ran"
        );
    }

    #[test]
    fn ddl_in_action_rejected() {
        let (mut cat, pnode) = setup();
        let mut planner = ActionPlanner::new(false);
        let cmd = parse_command("create t (x = int)").unwrap();
        assert!(planner.execute_action(1, &[cmd], &pnode, &mut cat).is_err());
    }

    #[test]
    fn cached_plans_reused_and_invalidated() {
        let (mut cat, pnode) = setup();
        let mut planner = ActionPlanner::new(true);
        let act = action("append watch (who = emp.name)");
        planner.execute_action(1, &act, &pnode, &mut cat).unwrap();
        assert_eq!(planner.cache.len(), 1);
        // second firing reuses the cached plan
        planner.execute_action(1, &act, &pnode, &mut cat).unwrap();
        assert_eq!(cat.get("watch").unwrap().borrow().len(), 4);
        planner.invalidate(1);
        assert!(planner.cache.is_empty());
    }

    #[test]
    fn cached_and_fresh_agree() {
        let (mut cat1, pnode) = setup();
        let (mut cat2, _) = setup();
        let act = action("do append watch (who = emp.name) replace emp (sal = emp.sal + 1) end");
        let mut fresh = ActionPlanner::new(false);
        let mut cached = ActionPlanner::new(true);
        for _ in 0..3 {
            fresh.execute_action(1, &act, &pnode, &mut cat1).unwrap();
            cached.execute_action(1, &act, &pnode, &mut cat2).unwrap();
        }
        // note: pnode rows hold the tuple values captured at match time, so
        // both engines apply identical updates
        let sum = |cat: &Catalog| -> f64 {
            cat.get("emp")
                .unwrap()
                .borrow()
                .scan()
                .map(|(_, t)| t.get(1).as_f64().unwrap())
                .sum()
        };
        assert_eq!(sum(&cat1), sum(&cat2));
        assert_eq!(
            cat1.get("watch").unwrap().borrow().len(),
            cat2.get("watch").unwrap().borrow().len()
        );
    }

    #[test]
    fn empty_pnode_action_is_noop() {
        let (mut cat, _) = setup();
        let emp_schema = cat.get("emp").unwrap().borrow().schema().clone();
        let empty = Pnode::new(vec![PnodeCol {
            var: "emp".into(),
            rel: "emp".into(),
            schema: emp_schema,
            has_prev: false,
        }]);
        let mut planner = ActionPlanner::new(false);
        let out = planner
            .execute_action(1, &action("delete emp"), &empty, &mut cat)
            .unwrap();
        assert!(out.changes.is_empty());
        assert_eq!(cat.get("emp").unwrap().borrow().len(), 2);
    }

    #[test]
    fn action_uses_previous_values() {
        // raiselimit-style action logging old and new salary
        let mut cat = Catalog::new();
        let emp = cat
            .create(
                "emp",
                Schema::of(&[("name", AttrType::Str), ("sal", AttrType::Float)]),
            )
            .unwrap();
        cat.create(
            "salaryerror",
            Schema::of(&[
                ("name", AttrType::Str),
                ("oldsal", AttrType::Float),
                ("newsal", AttrType::Float),
            ]),
        )
        .unwrap();
        let tid = emp
            .borrow_mut()
            .insert(vec!["bob".into(), 120_000.0.into()])
            .unwrap();
        let mut pnode = Pnode::new(vec![PnodeCol {
            var: "emp".into(),
            rel: "emp".into(),
            schema: emp.borrow().schema().clone(),
            has_prev: true,
        }]);
        pnode.push(vec![BoundVar::with_prev(
            Some(tid),
            emp.borrow().get(tid).cloned().unwrap(),
            Tuple::new(vec!["bob".into(), Value::Float(100_000.0)]),
        )]);
        let act = action(
            "append salaryerror (name = emp.name, oldsal = previous emp.sal, newsal = emp.sal)",
        );
        let mut planner = ActionPlanner::new(false);
        planner.execute_action(1, &act, &pnode, &mut cat).unwrap();
        let log = cat.get("salaryerror").unwrap();
        let log = log.borrow();
        let (_, row) = log.scan().next().unwrap();
        assert_eq!(row.get(1), &Value::Float(100_000.0));
        assert_eq!(row.get(2), &Value::Float(120_000.0));
    }
}
