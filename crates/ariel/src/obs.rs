//! Engine-level observability: action/cycle timing, the metrics snapshot,
//! and the `explain analyze` renderer.
//!
//! The network layers keep their own two observability tiers (see
//! [`ariel_network::obs`]); this module adds the phases only the engine can
//! see — wall-clock time per token batch pushed through the network and
//! per rule-action execution — and assembles everything into the two
//! user-facing surfaces:
//!
//! * [`crate::Ariel::metrics_json`] — a hand-rolled JSON snapshot of the
//!   engine counters, network counters, per-rule statistics, and (when the
//!   observability flag is on) every timing histogram. The benchmark
//!   driver serializes this into `BENCH_obs.json`.
//! * [`crate::Ariel::explain_analyze`] — run a command with a scoped
//!   timing capture and render an annotated per-node tree: tokens in/out,
//!   selectivity, join fan-out, and time spent at every node the command's
//!   tokens touched.
//!
//! The full schema of both surfaces is documented in
//! `docs/OBSERVABILITY.md`.

use ariel_islist::Histogram;
use ariel_network::{AlphaKind, MatchObs, NetworkStats, RuleStats};
use std::collections::BTreeMap;

use crate::engine::EngineStats;

/// Engine-side timing store, active while the observability flag is on.
#[derive(Debug, Default)]
pub struct EngineObs {
    /// Wall-clock ns per token batch pushed through the network (one
    /// sample per DML command or rule action that produced tokens).
    pub match_batch: Histogram,
    /// Wall-clock ns per rule-action execution, keyed by rule id.
    pub action_exec: BTreeMap<u64, Histogram>,
}

impl EngineObs {
    /// New empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one action execution for a rule.
    pub fn record_action(&mut self, rule: u64, ns: u64) {
        self.action_exec.entry(rule).or_default().record(ns);
    }

    /// Fold another store into this one (scoped-capture restore).
    pub fn merge(&mut self, other: &EngineObs) {
        self.match_batch.merge(&other.match_batch);
        for (rule, h) in &other.action_exec {
            self.action_exec.entry(*rule).or_default().merge(h);
        }
    }
}

/// Cumulative WAL durability telemetry the engine accumulates across
/// writer re-attachments.
///
/// A [`ariel_storage::wal::WalWriter`] counts records, bytes and fsyncs
/// only for its own lifetime, and the engine drops and recreates the
/// writer at every checkpoint, durability-mode change and recovery. This
/// struct is where the dying writer's figures are folded (see
/// `Ariel::wal_detach`), so [`crate::Ariel::wal_metrics`] can report
/// engine-lifetime totals.
#[derive(Debug, Default)]
pub struct WalTotals {
    /// Records appended by detached writers.
    pub records: u64,
    /// Bytes appended by detached writers (framing included).
    pub bytes: u64,
    /// Fsyncs issued by detached writers.
    pub fsyncs: u64,
    /// Fsync wall-clock latency of detached writers, in nanoseconds.
    pub fsync_ns: Histogram,
    /// Records that failed to replay during the last [`crate::Ariel::recover`].
    pub replay_errors: u64,
}

/// Point-in-time snapshot of the engine's WAL telemetry: the cumulative
/// [`WalTotals`] merged with the live writer's figures. Returned by
/// [`crate::Ariel::wal_metrics`] and rendered into both
/// [`crate::Ariel::metrics_json`] (the `"wal"` section) and the
/// Prometheus exposition (`ariel_wal_*` families).
#[derive(Debug, Clone)]
pub struct WalMetrics {
    /// Whether a log writer is currently attached (durability enabled).
    pub attached: bool,
    /// Total WAL records appended over the engine's lifetime.
    pub records: u64,
    /// Total WAL bytes appended (framing included).
    pub bytes: u64,
    /// Total fsyncs issued by the durability path.
    pub fsyncs: u64,
    /// Fsync wall-clock latency histogram, in nanoseconds.
    pub fsync_ns: Histogram,
    /// Records that failed to replay during the last recovery.
    pub replay_errors: u64,
}

impl WalMetrics {
    /// Render the `"wal"` object of the metrics snapshot.
    pub(crate) fn to_json(&self) -> String {
        format!(
            "{{\"attached\":{},\"records\":{},\"bytes\":{},\"fsyncs\":{},\
             \"replay_errors\":{},\"fsync_ns\":{}}}",
            self.attached,
            self.records,
            self.bytes,
            self.fsyncs,
            self.replay_errors,
            self.fsync_ns.to_json(),
        )
    }
}

/// Format a nanosecond duration human-readably (`850 ns`, `12.3 µs`, …).
pub(crate) fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.1} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.1} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", ns as f64 / 1_000_000_000.0)
    }
}

fn kind_name(kind: AlphaKind) -> &'static str {
    match kind {
        AlphaKind::Stored => "stored",
        AlphaKind::Virtual => "virtual",
        AlphaKind::DynamicOn => "dynamic-on",
        AlphaKind::DynamicTrans => "dynamic-transition",
        AlphaKind::Simple => "simple",
        AlphaKind::SimpleOn => "simple-on",
        AlphaKind::SimpleTrans => "simple-transition",
    }
}

/// Everything [`render_metrics_json`] needs, gathered by the engine.
pub(crate) struct MetricsInput<'a> {
    pub engine: EngineStats,
    pub network: NetworkStats,
    /// `(rule name, action firings, per-rule stats)` for every active rule.
    pub rules: Vec<(String, u64, RuleStats)>,
    /// Merged WAL telemetry snapshot.
    pub wal: WalMetrics,
    /// Cumulative network timing session, when observability is on.
    pub match_obs: Option<&'a MatchObs>,
    /// Cumulative engine timing store, when observability is on.
    pub engine_obs: Option<&'a EngineObs>,
    /// Rule names by id (labels the `action_exec` histograms).
    pub names: BTreeMap<u64, String>,
}

/// Assemble the full metrics snapshot as a JSON document.
pub(crate) fn render_metrics_json(input: &MetricsInput<'_>) -> String {
    let e = input.engine;
    let n = input.network;
    let mut s = format!(
        "{{\"engine\":{{\"transitions\":{},\"tokens\":{},\"firings\":{}}},",
        e.transitions, e.tokens, e.firings
    );
    s.push_str(&format!(
        "\"network\":{{\"rules\":{},\"alpha_nodes\":{},\"virtual_alpha_nodes\":{},\
         \"alpha_entries\":{},\"alpha_bytes\":{},\"pnode_rows\":{},\"pnode_bytes\":{},\
         \"selnet_bytes\":{},\"tokens_processed\":{},\"selnet_probes\":{},\
         \"selnet_candidates\":{},\"islist_stabs\":{},\"islist_nodes_visited\":{},\
         \"alpha_tests\":{},\"alpha_passes\":{},\"join_probes\":{},\"pnode_inserts\":{},\
         \"virtual_scans\":{},\"virtual_scanned_tuples\":{},\
         \"stored_join_candidates\":{},\"virtual_join_candidates\":{},\
         \"index_probes\":{},\"index_hits\":{},\
         \"indexed_candidates\":{},\"scanned_candidates\":{},\
         \"range_probes\":{},\"range_hits\":{},\
         \"beta_bytes\":{},\"beta_probes\":{},\"beta_hits\":{}}},",
        n.rules,
        n.alpha_nodes,
        n.virtual_alpha_nodes,
        n.alpha_entries,
        n.alpha_bytes,
        n.pnode_rows,
        n.pnode_bytes,
        n.selnet_bytes,
        n.tokens_processed,
        n.selnet_probes,
        n.selnet_candidates,
        n.islist_stabs,
        n.islist_nodes_visited,
        n.alpha_tests,
        n.alpha_passes,
        n.join_probes,
        n.pnode_inserts,
        n.virtual_scans,
        n.virtual_scanned_tuples,
        n.stored_join_candidates,
        n.virtual_join_candidates,
        n.index_probes,
        n.index_hits,
        n.indexed_candidates,
        n.scanned_candidates,
        n.range_probes,
        n.range_hits,
        n.beta_bytes,
        n.beta_probes,
        n.beta_hits,
    ));
    s.push_str("\"rules\":[");
    for (i, (name, firings, r)) in input.rules.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "{{\"name\":\"{}\",\"firings\":{firings},\"alpha_entries\":{},\"alpha_bytes\":{},\"pnode_rows\":{},\
             \"pnode_bytes\":{},\"tokens_in\":{},\"alpha_tests\":{},\"alpha_passes\":{},\
             \"join_probes\":{},\"pnode_inserts\":{},\"join_fanout\":{:.4},\
             \"virtual_scans\":{},\"virtual_scanned_tuples\":{},\
             \"stored_join_candidates\":{},\"virtual_join_candidates\":{},\
             \"index_probes\":{},\"index_hits\":{},\
             \"indexed_candidates\":{},\"scanned_candidates\":{},\
             \"range_probes\":{},\"range_hits\":{},\
             \"beta_bytes\":{},\"beta_probes\":{},\"beta_hits\":{},\
             \"virtual_hit_ratio\":{:.4}}}",
            name,
            r.alpha_entries,
            r.alpha_bytes,
            r.pnode_rows,
            r.pnode_bytes,
            r.tokens_in,
            r.alpha_tests,
            r.alpha_passes,
            r.join_probes,
            r.pnode_inserts,
            r.join_fanout(),
            r.virtual_scans,
            r.virtual_scanned_tuples,
            r.stored_join_candidates,
            r.virtual_join_candidates,
            r.index_probes,
            r.index_hits,
            r.indexed_candidates,
            r.scanned_candidates,
            r.range_probes,
            r.range_hits,
            r.beta_bytes,
            r.beta_probes,
            r.beta_hits,
            r.virtual_hit_ratio(),
        ));
    }
    s.push_str("],\"wal\":");
    s.push_str(&input.wal.to_json());
    s.push_str(",\"timing\":");
    match (input.match_obs, input.engine_obs) {
        (Some(m), Some(eo)) => {
            s.push_str(&format!(
                "{{\"match\":{},\"match_batch\":{},\"action_exec\":{{",
                m.to_json(),
                eo.match_batch.to_json()
            ));
            for (i, (rule, h)) in eo.action_exec.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                let label = input
                    .names
                    .get(rule)
                    .cloned()
                    .unwrap_or_else(|| format!("rule-{rule}"));
                s.push_str(&format!("\"{}\":{}", label, h.to_json()));
            }
            s.push_str("}}");
        }
        _ => s.push_str("null"),
    }
    s.push('}');
    s
}

/// Escape a string for use inside a Prometheus label value: `\` → `\\`,
/// `"` → `\"`, newline → `\n`.
pub fn prom_escape_label(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Append a `# HELP`/`# TYPE` header pair followed by one sample line
/// (`name value`, or `name{labels} value` when `labels` is non-empty).
pub fn write_prom_metric(out: &mut String, name: &str, kind: &str, help: &str, value: u64) {
    out.push_str(&format!(
        "# HELP {name} {help}\n# TYPE {name} {kind}\n{name} {value}\n"
    ));
}

/// Append the `# HELP`/`# TYPE` header pair of a metric family without
/// any sample line — used before a labelled series.
pub fn write_prom_family(out: &mut String, name: &str, kind: &str, help: &str) {
    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
}

/// Append one labelled sample line (`name{labels} value`).
pub fn write_prom_sample(out: &mut String, name: &str, labels: &str, value: u64) {
    if labels.is_empty() {
        out.push_str(&format!("{name} {value}\n"));
    } else {
        out.push_str(&format!("{name}{{{labels}}} {value}\n"));
    }
}

/// Render a log₂ [`Histogram`] as the sample lines of a Prometheus
/// histogram family: cumulative `name_bucket{le="…"}` lines (one per
/// non-empty log₂ bucket, upper bound = the next bucket's floor, plus the
/// mandatory `+Inf`), then `name_sum` and `name_count`. The caller emits
/// the `# HELP`/`# TYPE histogram` header (once per family) via
/// [`write_prom_family`]; `labels` is spliced into every line so one
/// family can carry many labelled series.
pub fn write_prom_histogram(out: &mut String, name: &str, labels: &str, h: &Histogram) {
    let buckets = h.buckets();
    let sep = if labels.is_empty() { "" } else { "," };
    let mut cum = 0u64;
    if let Some(last) = buckets.iter().rposition(|&n| n > 0) {
        for (i, &n) in buckets.iter().enumerate().take(last + 1) {
            cum += n;
            let le = Histogram::bucket_floor(i + 1);
            out.push_str(&format!(
                "{name}_bucket{{{labels}{sep}le=\"{le}\"}} {cum}\n"
            ));
        }
    }
    out.push_str(&format!(
        "{name}_bucket{{{labels}{sep}le=\"+Inf\"}} {}\n",
        h.count()
    ));
    let lb = if labels.is_empty() {
        String::new()
    } else {
        format!("{{{labels}}}")
    };
    out.push_str(&format!("{name}_sum{lb} {}\n", h.sum()));
    out.push_str(&format!("{name}_count{lb} {}\n", h.count()));
}

/// Assemble the engine half of the Prometheus text exposition: engine
/// counters, network counters/gauges, per-rule firing counters, WAL
/// durability metrics, and — when observability is on — the engine timing
/// histograms. The server prepends its own `ariel_server_*` families (see
/// `ariel-server`'s telemetry module); the REPL serves this directly as
/// `\metrics prom`.
pub(crate) fn render_metrics_prometheus(input: &MetricsInput<'_>) -> String {
    let mut s = String::with_capacity(4096);
    let e = input.engine;
    write_prom_metric(
        &mut s,
        "ariel_engine_transitions_total",
        "counter",
        "Committed state transitions (recognize-act cycles triggered by DML).",
        e.transitions,
    );
    write_prom_metric(
        &mut s,
        "ariel_engine_tokens_total",
        "counter",
        "Net-effect delta tokens pushed through the discrimination network.",
        e.tokens,
    );
    write_prom_metric(
        &mut s,
        "ariel_engine_firings_total",
        "counter",
        "Rule-action executions.",
        e.firings,
    );
    let n = input.network;
    for (name, kind, help, v) in [
        (
            "ariel_network_rules",
            "gauge",
            "Active rules in the discrimination network.",
            n.rules as u64,
        ),
        (
            "ariel_network_alpha_entries",
            "gauge",
            "Entries across all stored alpha memories.",
            n.alpha_entries as u64,
        ),
        (
            "ariel_network_alpha_bytes",
            "gauge",
            "Approximate bytes held by stored alpha memories.",
            n.alpha_bytes as u64,
        ),
        (
            "ariel_network_pnode_rows",
            "gauge",
            "Rule instantiations waiting in P-nodes.",
            n.pnode_rows as u64,
        ),
        (
            "ariel_network_pnode_bytes",
            "gauge",
            "Approximate bytes held by P-nodes.",
            n.pnode_bytes as u64,
        ),
        (
            "ariel_network_beta_bytes",
            "gauge",
            "Approximate bytes held by beta memories (Rete modes).",
            n.beta_bytes as u64,
        ),
        (
            "ariel_network_selnet_bytes",
            "gauge",
            "Approximate bytes held by the selection network.",
            n.selnet_bytes as u64,
        ),
        (
            "ariel_network_tokens_processed_total",
            "counter",
            "Tokens processed by the match network.",
            n.tokens_processed,
        ),
        (
            "ariel_network_selnet_probes_total",
            "counter",
            "Selection-network stabbing queries.",
            n.selnet_probes,
        ),
        (
            "ariel_network_alpha_tests_total",
            "counter",
            "Alpha-node predicate tests.",
            n.alpha_tests,
        ),
        (
            "ariel_network_alpha_passes_total",
            "counter",
            "Alpha-node predicate passes.",
            n.alpha_passes,
        ),
        (
            "ariel_network_join_probes_total",
            "counter",
            "Join probes across all rules.",
            n.join_probes,
        ),
        (
            "ariel_network_pnode_inserts_total",
            "counter",
            "Instantiations inserted into P-nodes.",
            n.pnode_inserts,
        ),
        (
            "ariel_network_index_probes_total",
            "counter",
            "Join-index probes.",
            n.index_probes,
        ),
        (
            "ariel_network_index_hits_total",
            "counter",
            "Join-index probe hits.",
            n.index_hits,
        ),
    ] {
        write_prom_metric(&mut s, name, kind, help, v);
    }
    write_prom_family(
        &mut s,
        "ariel_rule_firings_total",
        "counter",
        "Rule-action executions per rule (since engine start or recovery).",
    );
    for (name, firings, _) in &input.rules {
        write_prom_sample(
            &mut s,
            "ariel_rule_firings_total",
            &format!("rule=\"{}\"", prom_escape_label(name)),
            *firings,
        );
    }
    write_prom_family(
        &mut s,
        "ariel_rule_pnode_rows",
        "gauge",
        "Rule instantiations waiting in each rule's P-node.",
    );
    for (name, _, r) in &input.rules {
        write_prom_sample(
            &mut s,
            "ariel_rule_pnode_rows",
            &format!("rule=\"{}\"", prom_escape_label(name)),
            r.pnode_rows as u64,
        );
    }
    write_prom_family(
        &mut s,
        "ariel_rule_tokens_in_total",
        "counter",
        "Tokens routed to each rule's alpha nodes.",
    );
    for (name, _, r) in &input.rules {
        write_prom_sample(
            &mut s,
            "ariel_rule_tokens_in_total",
            &format!("rule=\"{}\"", prom_escape_label(name)),
            r.tokens_in,
        );
    }
    let w = &input.wal;
    write_prom_metric(
        &mut s,
        "ariel_wal_attached",
        "gauge",
        "1 when a write-ahead-log writer is attached (durability enabled).",
        w.attached as u64,
    );
    write_prom_metric(
        &mut s,
        "ariel_wal_records_total",
        "counter",
        "WAL records appended over the engine lifetime.",
        w.records,
    );
    write_prom_metric(
        &mut s,
        "ariel_wal_bytes_total",
        "counter",
        "WAL bytes appended (framing included).",
        w.bytes,
    );
    write_prom_metric(
        &mut s,
        "ariel_wal_fsyncs_total",
        "counter",
        "Fsyncs issued by the durability path.",
        w.fsyncs,
    );
    write_prom_metric(
        &mut s,
        "ariel_wal_replay_errors_total",
        "counter",
        "WAL records that failed to replay during the last recovery.",
        w.replay_errors,
    );
    write_prom_family(
        &mut s,
        "ariel_wal_fsync_duration_ns",
        "histogram",
        "Wall-clock fsync latency of the WAL writer, in nanoseconds.",
    );
    write_prom_histogram(&mut s, "ariel_wal_fsync_duration_ns", "", &w.fsync_ns);
    if let Some(eo) = input.engine_obs {
        write_prom_family(
            &mut s,
            "ariel_match_batch_duration_ns",
            "histogram",
            "Wall-clock time per token batch pushed through the network, in nanoseconds.",
        );
        write_prom_histogram(&mut s, "ariel_match_batch_duration_ns", "", &eo.match_batch);
        write_prom_family(
            &mut s,
            "ariel_action_duration_ns",
            "histogram",
            "Wall-clock time per rule-action execution, in nanoseconds.",
        );
        for (rule, h) in &eo.action_exec {
            let label = input
                .names
                .get(rule)
                .cloned()
                .unwrap_or_else(|| format!("rule-{rule}"));
            write_prom_histogram(
                &mut s,
                "ariel_action_duration_ns",
                &format!("rule=\"{}\"", prom_escape_label(&label)),
                h,
            );
        }
    }
    s
}

/// One rule's topology for the `explain analyze` renderer.
pub(crate) struct AnalyzedRule {
    pub id: u64,
    pub name: String,
    /// `(variable name, relation, α-node kind)` per condition variable.
    pub vars: Vec<(String, String, AlphaKind)>,
    pub join_conjuncts: usize,
}

/// Everything [`render_explain_analyze`] needs, gathered by the engine.
pub(crate) struct AnalyzeInput<'a> {
    pub src: &'a str,
    pub total_ns: u64,
    /// Scoped network timing capture for exactly this run.
    pub capture: MatchObs,
    /// Scoped engine timing capture for exactly this run.
    pub engine_capture: EngineObs,
    /// Topology of every active rule, in rule-id order.
    pub rules: Vec<AnalyzedRule>,
}

/// Render the per-node annotated tree of one analyzed command.
pub(crate) fn render_explain_analyze(input: &AnalyzeInput<'_>) -> String {
    let cap = &input.capture;
    let mut out = format!("explain analyze: {}\n", input.src.trim());
    out.push_str(&format!(
        "total {}; {} token(s) through the network\n",
        fmt_ns(input.total_ns),
        cap.tokens.get()
    ));
    out.push_str(&format!(
        "selection network: {} probe(s), {} candidate(s), mean {}/probe\n",
        cap.selnet_probe.count(),
        cap.selnet_candidates.get(),
        fmt_ns(cap.selnet_probe.mean()),
    ));
    let mut any = false;
    for rule in &input.rules {
        let robs = cap.rule(ariel_network::RuleId(rule.id));
        let touched = robs.is_some()
            || (0..rule.vars.len()).any(|v| cap.node(ariel_network::RuleId(rule.id), v).is_some());
        if !touched {
            continue;
        }
        any = true;
        out.push_str(&format!("rule {}:\n", rule.name));
        for (v, (var, rel, kind)) in rule.vars.iter().enumerate() {
            let n = cap
                .node(ariel_network::RuleId(rule.id), v)
                .unwrap_or_default();
            out.push_str(&format!(
                "  α[{var}: {rel}] {} — in {}, out {} (selectivity {:.2}), +{} entries",
                kind_name(*kind),
                n.tokens_in,
                n.tokens_out,
                n.selectivity(),
                n.entries_inserted,
            ));
            if n.alpha_test.count() > 0 {
                out.push_str(&format!(", mean {}/test", fmt_ns(n.alpha_test.mean())));
            }
            if n.virtual_scans > 0 {
                out.push_str(&format!(
                    "; {} scan(s) over {} tuple(s) → {} candidate(s), mean {}/scan",
                    n.virtual_scans,
                    n.scanned_tuples,
                    n.join_candidates,
                    fmt_ns(n.virtual_scan.mean()),
                ));
            } else if n.join_candidates > 0 {
                out.push_str(&format!(", {} join candidate(s) served", n.join_candidates));
            }
            out.push('\n');
        }
        let r = robs.unwrap_or_default();
        if rule.vars.len() > 1 {
            out.push_str(&format!(
                "  β-join ({} conjunct(s)) — {} probe(s), fan-out {:.2}, mean {}/join\n",
                rule.join_conjuncts,
                r.join_probes,
                r.join_fanout(),
                fmt_ns(r.beta_join.mean()),
            ));
        }
        out.push_str(&format!(
            "  P-node — +{} instantiation(s), mean {}/insert\n",
            r.pnode_inserts,
            fmt_ns(r.pnode_insert.mean()),
        ));
        if let Some(h) = input.engine_capture.action_exec.get(&rule.id) {
            out.push_str(&format!(
                "  action — {} firing(s), mean {}/firing\n",
                h.count(),
                fmt_ns(h.mean()),
            ));
        }
    }
    if !any {
        out.push_str("(no rule activity)\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_ns_units() {
        assert_eq!(fmt_ns(850), "850 ns");
        assert_eq!(fmt_ns(12_300), "12.3 µs");
        assert_eq!(fmt_ns(4_500_000), "4.5 ms");
        assert_eq!(fmt_ns(2_500_000_000), "2.50 s");
    }

    #[test]
    fn engine_obs_merge() {
        let mut a = EngineObs::new();
        let mut b = EngineObs::new();
        a.record_action(1, 100);
        b.record_action(1, 300);
        b.record_action(2, 50);
        b.match_batch.record(10);
        a.merge(&b);
        assert_eq!(a.action_exec[&1].count(), 2);
        assert_eq!(a.action_exec[&2].count(), 1);
        assert_eq!(a.match_batch.count(), 1);
    }

    fn empty_wal() -> WalMetrics {
        WalMetrics {
            attached: false,
            records: 0,
            bytes: 0,
            fsyncs: 0,
            fsync_ns: Histogram::new(),
            replay_errors: 0,
        }
    }

    #[test]
    fn metrics_json_without_timing_is_null() {
        let input = MetricsInput {
            engine: EngineStats::default(),
            network: NetworkStats::default(),
            rules: vec![("r".into(), 3, RuleStats::default())],
            wal: empty_wal(),
            match_obs: None,
            engine_obs: None,
            names: BTreeMap::new(),
        };
        let j = render_metrics_json(&input);
        assert!(j.contains("\"timing\":null"), "{j}");
        assert!(j.contains("\"name\":\"r\""), "{j}");
        assert!(j.contains("\"firings\":3"), "{j}");
        assert!(j.contains("\"wal\":{\"attached\":false"), "{j}");
        assert!(j.starts_with('{') && j.ends_with('}'));
    }

    #[test]
    fn prom_histogram_lines_are_cumulative() {
        let h = Histogram::new();
        h.record(3); // bucket 2 (floor 2), le = 4
        h.record(3);
        h.record(100); // bucket 7 (floor 64), le = 128
        let mut out = String::new();
        write_prom_histogram(&mut out, "x", "", &h);
        assert!(out.contains("x_bucket{le=\"4\"} 2\n"), "{out}");
        assert!(out.contains("x_bucket{le=\"128\"} 3\n"), "{out}");
        assert!(out.contains("x_bucket{le=\"+Inf\"} 3\n"), "{out}");
        assert!(out.contains("x_sum 106\n"), "{out}");
        assert!(out.contains("x_count 3\n"), "{out}");
        let mut labelled = String::new();
        write_prom_histogram(&mut labelled, "x", "rule=\"r\"", &h);
        assert!(
            labelled.contains("x_bucket{rule=\"r\",le=\"+Inf\"} 3\n"),
            "{labelled}"
        );
        assert!(labelled.contains("x_count{rule=\"r\"} 3\n"), "{labelled}");
    }

    #[test]
    fn prom_exposition_families() {
        let wal = WalMetrics {
            attached: true,
            records: 7,
            bytes: 512,
            fsyncs: 2,
            fsync_ns: Histogram::new(),
            replay_errors: 0,
        };
        wal.fsync_ns.record(1000);
        let input = MetricsInput {
            engine: EngineStats {
                transitions: 5,
                tokens: 9,
                firings: 2,
            },
            network: NetworkStats::default(),
            rules: vec![("audit".into(), 2, RuleStats::default())],
            wal,
            match_obs: None,
            engine_obs: None,
            names: BTreeMap::new(),
        };
        let p = render_metrics_prometheus(&input);
        assert!(
            p.contains("# TYPE ariel_engine_transitions_total counter"),
            "{p}"
        );
        assert!(p.contains("ariel_engine_transitions_total 5\n"), "{p}");
        assert!(
            p.contains("ariel_rule_firings_total{rule=\"audit\"} 2\n"),
            "{p}"
        );
        assert!(p.contains("ariel_wal_fsyncs_total 2\n"), "{p}");
        assert!(
            p.contains("# TYPE ariel_wal_fsync_duration_ns histogram"),
            "{p}"
        );
        assert!(p.contains("ariel_wal_fsync_duration_ns_count 1\n"), "{p}");
        // every line is a comment or `name[{labels}] value`
        for line in p.lines() {
            assert!(
                line.starts_with("# ") || line.split(' ').count() == 2,
                "bad exposition line: {line}"
            );
        }
    }

    #[test]
    fn prom_label_escaping() {
        assert_eq!(prom_escape_label("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
