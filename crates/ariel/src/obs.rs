//! Engine-level observability: action/cycle timing, the metrics snapshot,
//! and the `explain analyze` renderer.
//!
//! The network layers keep their own two observability tiers (see
//! [`ariel_network::obs`]); this module adds the phases only the engine can
//! see — wall-clock time per token batch pushed through the network and
//! per rule-action execution — and assembles everything into the two
//! user-facing surfaces:
//!
//! * [`crate::Ariel::metrics_json`] — a hand-rolled JSON snapshot of the
//!   engine counters, network counters, per-rule statistics, and (when the
//!   observability flag is on) every timing histogram. The benchmark
//!   driver serializes this into `BENCH_obs.json`.
//! * [`crate::Ariel::explain_analyze`] — run a command with a scoped
//!   timing capture and render an annotated per-node tree: tokens in/out,
//!   selectivity, join fan-out, and time spent at every node the command's
//!   tokens touched.
//!
//! The full schema of both surfaces is documented in
//! `docs/OBSERVABILITY.md`.

use ariel_islist::Histogram;
use ariel_network::{AlphaKind, MatchObs, NetworkStats, RuleStats};
use std::collections::BTreeMap;

use crate::engine::EngineStats;

/// Engine-side timing store, active while the observability flag is on.
#[derive(Debug, Default)]
pub struct EngineObs {
    /// Wall-clock ns per token batch pushed through the network (one
    /// sample per DML command or rule action that produced tokens).
    pub match_batch: Histogram,
    /// Wall-clock ns per rule-action execution, keyed by rule id.
    pub action_exec: BTreeMap<u64, Histogram>,
}

impl EngineObs {
    /// New empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one action execution for a rule.
    pub fn record_action(&mut self, rule: u64, ns: u64) {
        self.action_exec.entry(rule).or_default().record(ns);
    }

    /// Fold another store into this one (scoped-capture restore).
    pub fn merge(&mut self, other: &EngineObs) {
        self.match_batch.merge(&other.match_batch);
        for (rule, h) in &other.action_exec {
            self.action_exec.entry(*rule).or_default().merge(h);
        }
    }
}

/// Format a nanosecond duration human-readably (`850 ns`, `12.3 µs`, …).
pub(crate) fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.1} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.1} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", ns as f64 / 1_000_000_000.0)
    }
}

fn kind_name(kind: AlphaKind) -> &'static str {
    match kind {
        AlphaKind::Stored => "stored",
        AlphaKind::Virtual => "virtual",
        AlphaKind::DynamicOn => "dynamic-on",
        AlphaKind::DynamicTrans => "dynamic-transition",
        AlphaKind::Simple => "simple",
        AlphaKind::SimpleOn => "simple-on",
        AlphaKind::SimpleTrans => "simple-transition",
    }
}

/// Everything [`render_metrics_json`] needs, gathered by the engine.
pub(crate) struct MetricsInput<'a> {
    pub engine: EngineStats,
    pub network: NetworkStats,
    /// `(rule name, per-rule stats)` for every active rule.
    pub rules: Vec<(String, RuleStats)>,
    /// Cumulative network timing session, when observability is on.
    pub match_obs: Option<&'a MatchObs>,
    /// Cumulative engine timing store, when observability is on.
    pub engine_obs: Option<&'a EngineObs>,
    /// Rule names by id (labels the `action_exec` histograms).
    pub names: BTreeMap<u64, String>,
}

/// Assemble the full metrics snapshot as a JSON document.
pub(crate) fn render_metrics_json(input: &MetricsInput<'_>) -> String {
    let e = input.engine;
    let n = input.network;
    let mut s = format!(
        "{{\"engine\":{{\"transitions\":{},\"tokens\":{},\"firings\":{}}},",
        e.transitions, e.tokens, e.firings
    );
    s.push_str(&format!(
        "\"network\":{{\"rules\":{},\"alpha_nodes\":{},\"virtual_alpha_nodes\":{},\
         \"alpha_entries\":{},\"alpha_bytes\":{},\"pnode_rows\":{},\"pnode_bytes\":{},\
         \"selnet_bytes\":{},\"tokens_processed\":{},\"selnet_probes\":{},\
         \"selnet_candidates\":{},\"islist_stabs\":{},\"islist_nodes_visited\":{},\
         \"alpha_tests\":{},\"alpha_passes\":{},\"join_probes\":{},\"pnode_inserts\":{},\
         \"virtual_scans\":{},\"virtual_scanned_tuples\":{},\
         \"stored_join_candidates\":{},\"virtual_join_candidates\":{},\
         \"index_probes\":{},\"index_hits\":{},\
         \"indexed_candidates\":{},\"scanned_candidates\":{},\
         \"range_probes\":{},\"range_hits\":{},\
         \"beta_bytes\":{},\"beta_probes\":{},\"beta_hits\":{}}},",
        n.rules,
        n.alpha_nodes,
        n.virtual_alpha_nodes,
        n.alpha_entries,
        n.alpha_bytes,
        n.pnode_rows,
        n.pnode_bytes,
        n.selnet_bytes,
        n.tokens_processed,
        n.selnet_probes,
        n.selnet_candidates,
        n.islist_stabs,
        n.islist_nodes_visited,
        n.alpha_tests,
        n.alpha_passes,
        n.join_probes,
        n.pnode_inserts,
        n.virtual_scans,
        n.virtual_scanned_tuples,
        n.stored_join_candidates,
        n.virtual_join_candidates,
        n.index_probes,
        n.index_hits,
        n.indexed_candidates,
        n.scanned_candidates,
        n.range_probes,
        n.range_hits,
        n.beta_bytes,
        n.beta_probes,
        n.beta_hits,
    ));
    s.push_str("\"rules\":[");
    for (i, (name, r)) in input.rules.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "{{\"name\":\"{}\",\"alpha_entries\":{},\"alpha_bytes\":{},\"pnode_rows\":{},\
             \"pnode_bytes\":{},\"tokens_in\":{},\"alpha_tests\":{},\"alpha_passes\":{},\
             \"join_probes\":{},\"pnode_inserts\":{},\"join_fanout\":{:.4},\
             \"virtual_scans\":{},\"virtual_scanned_tuples\":{},\
             \"stored_join_candidates\":{},\"virtual_join_candidates\":{},\
             \"index_probes\":{},\"index_hits\":{},\
             \"indexed_candidates\":{},\"scanned_candidates\":{},\
             \"range_probes\":{},\"range_hits\":{},\
             \"beta_bytes\":{},\"beta_probes\":{},\"beta_hits\":{},\
             \"virtual_hit_ratio\":{:.4}}}",
            name,
            r.alpha_entries,
            r.alpha_bytes,
            r.pnode_rows,
            r.pnode_bytes,
            r.tokens_in,
            r.alpha_tests,
            r.alpha_passes,
            r.join_probes,
            r.pnode_inserts,
            r.join_fanout(),
            r.virtual_scans,
            r.virtual_scanned_tuples,
            r.stored_join_candidates,
            r.virtual_join_candidates,
            r.index_probes,
            r.index_hits,
            r.indexed_candidates,
            r.scanned_candidates,
            r.range_probes,
            r.range_hits,
            r.beta_bytes,
            r.beta_probes,
            r.beta_hits,
            r.virtual_hit_ratio(),
        ));
    }
    s.push_str("],\"timing\":");
    match (input.match_obs, input.engine_obs) {
        (Some(m), Some(eo)) => {
            s.push_str(&format!(
                "{{\"match\":{},\"match_batch\":{},\"action_exec\":{{",
                m.to_json(),
                eo.match_batch.to_json()
            ));
            for (i, (rule, h)) in eo.action_exec.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                let label = input
                    .names
                    .get(rule)
                    .cloned()
                    .unwrap_or_else(|| format!("rule-{rule}"));
                s.push_str(&format!("\"{}\":{}", label, h.to_json()));
            }
            s.push_str("}}");
        }
        _ => s.push_str("null"),
    }
    s.push('}');
    s
}

/// One rule's topology for the `explain analyze` renderer.
pub(crate) struct AnalyzedRule {
    pub id: u64,
    pub name: String,
    /// `(variable name, relation, α-node kind)` per condition variable.
    pub vars: Vec<(String, String, AlphaKind)>,
    pub join_conjuncts: usize,
}

/// Everything [`render_explain_analyze`] needs, gathered by the engine.
pub(crate) struct AnalyzeInput<'a> {
    pub src: &'a str,
    pub total_ns: u64,
    /// Scoped network timing capture for exactly this run.
    pub capture: MatchObs,
    /// Scoped engine timing capture for exactly this run.
    pub engine_capture: EngineObs,
    /// Topology of every active rule, in rule-id order.
    pub rules: Vec<AnalyzedRule>,
}

/// Render the per-node annotated tree of one analyzed command.
pub(crate) fn render_explain_analyze(input: &AnalyzeInput<'_>) -> String {
    let cap = &input.capture;
    let mut out = format!("explain analyze: {}\n", input.src.trim());
    out.push_str(&format!(
        "total {}; {} token(s) through the network\n",
        fmt_ns(input.total_ns),
        cap.tokens.get()
    ));
    out.push_str(&format!(
        "selection network: {} probe(s), {} candidate(s), mean {}/probe\n",
        cap.selnet_probe.count(),
        cap.selnet_candidates.get(),
        fmt_ns(cap.selnet_probe.mean()),
    ));
    let mut any = false;
    for rule in &input.rules {
        let robs = cap.rule(ariel_network::RuleId(rule.id));
        let touched = robs.is_some()
            || (0..rule.vars.len()).any(|v| cap.node(ariel_network::RuleId(rule.id), v).is_some());
        if !touched {
            continue;
        }
        any = true;
        out.push_str(&format!("rule {}:\n", rule.name));
        for (v, (var, rel, kind)) in rule.vars.iter().enumerate() {
            let n = cap
                .node(ariel_network::RuleId(rule.id), v)
                .unwrap_or_default();
            out.push_str(&format!(
                "  α[{var}: {rel}] {} — in {}, out {} (selectivity {:.2}), +{} entries",
                kind_name(*kind),
                n.tokens_in,
                n.tokens_out,
                n.selectivity(),
                n.entries_inserted,
            ));
            if n.alpha_test.count() > 0 {
                out.push_str(&format!(", mean {}/test", fmt_ns(n.alpha_test.mean())));
            }
            if n.virtual_scans > 0 {
                out.push_str(&format!(
                    "; {} scan(s) over {} tuple(s) → {} candidate(s), mean {}/scan",
                    n.virtual_scans,
                    n.scanned_tuples,
                    n.join_candidates,
                    fmt_ns(n.virtual_scan.mean()),
                ));
            } else if n.join_candidates > 0 {
                out.push_str(&format!(", {} join candidate(s) served", n.join_candidates));
            }
            out.push('\n');
        }
        let r = robs.unwrap_or_default();
        if rule.vars.len() > 1 {
            out.push_str(&format!(
                "  β-join ({} conjunct(s)) — {} probe(s), fan-out {:.2}, mean {}/join\n",
                rule.join_conjuncts,
                r.join_probes,
                r.join_fanout(),
                fmt_ns(r.beta_join.mean()),
            ));
        }
        out.push_str(&format!(
            "  P-node — +{} instantiation(s), mean {}/insert\n",
            r.pnode_inserts,
            fmt_ns(r.pnode_insert.mean()),
        ));
        if let Some(h) = input.engine_capture.action_exec.get(&rule.id) {
            out.push_str(&format!(
                "  action — {} firing(s), mean {}/firing\n",
                h.count(),
                fmt_ns(h.mean()),
            ));
        }
    }
    if !any {
        out.push_str("(no rule activity)\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_ns_units() {
        assert_eq!(fmt_ns(850), "850 ns");
        assert_eq!(fmt_ns(12_300), "12.3 µs");
        assert_eq!(fmt_ns(4_500_000), "4.5 ms");
        assert_eq!(fmt_ns(2_500_000_000), "2.50 s");
    }

    #[test]
    fn engine_obs_merge() {
        let mut a = EngineObs::new();
        let mut b = EngineObs::new();
        a.record_action(1, 100);
        b.record_action(1, 300);
        b.record_action(2, 50);
        b.match_batch.record(10);
        a.merge(&b);
        assert_eq!(a.action_exec[&1].count(), 2);
        assert_eq!(a.action_exec[&2].count(), 1);
        assert_eq!(a.match_batch.count(), 1);
    }

    #[test]
    fn metrics_json_without_timing_is_null() {
        let input = MetricsInput {
            engine: EngineStats::default(),
            network: NetworkStats::default(),
            rules: vec![("r".into(), RuleStats::default())],
            match_obs: None,
            engine_obs: None,
            names: BTreeMap::new(),
        };
        let j = render_metrics_json(&input);
        assert!(j.contains("\"timing\":null"), "{j}");
        assert!(j.contains("\"name\":\"r\""), "{j}");
        assert!(j.starts_with('{') && j.ends_with('}'));
    }
}
