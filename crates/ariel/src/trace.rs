//! Rendering the flight recorder: the `\why` causal-chain view, the
//! `\trace show` listing, and the Chrome `trace_event` export.
//!
//! All renderings map raw rule ids back to names. The `\why` view never
//! prints raw sequence numbers: the A-TREAT and Rete backends record
//! different numbers of probe events (so sequence numbers diverge), but
//! transitions, cascade depths, TIDs, token descriptions, and command
//! text are backend-invariant — which makes the rendered causal chain
//! byte-identical across backends, a property the equivalence oracle in
//! `tests/observability.rs` pins.

use ariel_network::{TraceEventKind, TraceRecord, TraceSource};
use std::collections::HashMap;
use std::fmt::Write as _;

fn rule_name(names: &HashMap<u64, String>, id: u64) -> String {
    names
        .get(&id)
        .cloned()
        .unwrap_or_else(|| format!("rule#{id}"))
}

fn plural(n: u64) -> &'static str {
    if n == 1 {
        ""
    } else {
        "s"
    }
}

// ----- \why ------------------------------------------------------------------

/// Render the causal chain of every recorded firing of `rule`:
/// originating command → tokens → matched TIDs → firing → cascaded
/// updates, with cascade depths.
pub(crate) fn render_why(
    records: &[TraceRecord],
    rule: u64,
    name: &str,
    names: &HashMap<u64, String>,
) -> String {
    let by_seq: HashMap<u64, &TraceRecord> = records.iter().map(|r| (r.seq, r)).collect();
    let firings: Vec<&TraceRecord> = records
        .iter()
        .filter(|r| matches!(&r.kind, TraceEventKind::Firing { rule: rid, .. } if *rid == rule))
        .collect();
    if firings.is_empty() {
        return format!("why {name}: no firing of {name} in the trace ring\n");
    }
    let mut out = format!(
        "why {name}: {} firing{} in the trace ring\n",
        firings.len(),
        plural(firings.len() as u64)
    );
    for (i, f) in firings.iter().enumerate() {
        let TraceEventKind::Firing { instantiations, .. } = &f.kind else {
            unreachable!("filtered to firings");
        };
        let _ = write!(
            out,
            "\nfiring #{} of {name} — transition {}, depth {}, {} instantiation{}\n",
            i + 1,
            f.transition,
            f.depth,
            instantiations,
            plural(*instantiations)
        );
        out.push_str("  chain: ");
        out.push_str(&render_chain(f, records, &by_seq, names));
        out.push('\n');
        // The firing consumed the rule's `instantiations` most recent
        // P-node rows: the matching instantiation events closest before
        // it. Rendered sorted so join order (which differs between
        // backends) cannot leak into the output.
        let mut lines: Vec<String> = records
            .iter()
            .filter(|r| r.seq < f.seq)
            .filter_map(|r| match &r.kind {
                TraceEventKind::Instantiation {
                    rule: rid,
                    tids,
                    token,
                } if *rid == rule => Some((tids, token)),
                _ => None,
            })
            .collect::<Vec<_>>()
            .into_iter()
            .rev()
            .take(*instantiations as usize)
            .map(|(tids, token)| {
                let tids = tids
                    .iter()
                    .map(|t| t.map(|v| v.to_string()).unwrap_or_else(|| "-".to_string()))
                    .collect::<Vec<_>>()
                    .join(", ");
                let from = match token {
                    None => "(primed at activation)".to_string(),
                    Some(seq) => match by_seq.get(seq).map(|rec| &rec.kind) {
                        Some(TraceEventKind::TokenEmitted { desc, .. }) => {
                            format!("token {desc}")
                        }
                        _ => "(token evicted from ring)".to_string(),
                    },
                };
                format!("  instantiation tids [{tids}] ← {from}\n")
            })
            .collect();
        lines.sort();
        for line in lines {
            out.push_str(&line);
        }
        // The cascade this firing's action started.
        for r in records {
            let TraceEventKind::TransitionBegin {
                source: TraceSource::RuleAction { firing, .. },
            } = &r.kind
            else {
                continue;
            };
            if *firing != f.seq {
                continue;
            }
            let tokens = records.iter().find_map(|c| match &c.kind {
                TraceEventKind::CascadeDelta { firing: cf, tokens } if *cf == f.seq => {
                    Some(*tokens)
                }
                _ => None,
            });
            let _ = write!(
                out,
                "  cascade → transition {} (depth {})",
                r.transition, r.depth
            );
            match tokens {
                Some(t) => {
                    let _ = writeln!(out, ": {t} token{}", plural(t));
                }
                None => out.push('\n'),
            }
        }
    }
    out
}

/// Walk the firing's cause links up to the originating command and render
/// the chain top-down: `command `…` → r1 fired (depth 0) → r2 fired
/// (depth 1)`.
fn render_chain(
    f: &TraceRecord,
    records: &[TraceRecord],
    by_seq: &HashMap<u64, &TraceRecord>,
    names: &HashMap<u64, String>,
) -> String {
    let mut stack = Vec::new();
    let mut cur = Some(f);
    let mut root = None;
    while let Some(rec) = cur {
        let TraceEventKind::Firing { rule, cause, .. } = &rec.kind else {
            break;
        };
        stack.push(format!(
            "{} fired (depth {})",
            rule_name(names, *rule),
            rec.depth
        ));
        cur = match cause {
            Some(seq) => match by_seq.get(seq) {
                Some(r) => Some(*r),
                None => {
                    stack.push("(cause evicted from ring)".to_string());
                    None
                }
            },
            None => {
                root = Some(rec);
                None
            }
        };
    }
    if let Some(root) = root {
        // The root firing's instantiations arrived in its transition,
        // whose begin event carries the originating command text.
        let origin = records.iter().find_map(|r| match &r.kind {
            TraceEventKind::TransitionBegin {
                source: TraceSource::Command(text),
            } if r.transition == root.transition => Some(format!("command `{text}`")),
            _ => None,
        });
        stack.push(origin.unwrap_or_else(|| "(origin evicted from ring)".to_string()));
    }
    stack.reverse();
    stack.join(" → ")
}

// ----- \trace show -----------------------------------------------------------

/// Render the newest `limit` events (all when `None`) as one line each.
pub(crate) fn render_show(
    records: &[TraceRecord],
    names: &HashMap<u64, String>,
    limit: Option<usize>,
    dropped: u64,
) -> String {
    let shown = limit.unwrap_or(records.len()).min(records.len());
    let mut out = format!(
        "trace: {} event{} recorded, {} evicted\n",
        records.len(),
        plural(records.len() as u64),
        dropped
    );
    if shown < records.len() {
        let _ = writeln!(out, "(showing newest {shown})");
    }
    for r in &records[records.len() - shown..] {
        let detail = match &r.kind {
            TraceEventKind::TransitionBegin { source } => match source {
                TraceSource::Command(text) => format!("command `{text}`"),
                TraceSource::RuleAction { rule, firing } => {
                    format!("action of {} (firing #{firing})", rule_name(names, *rule))
                }
            },
            TraceEventKind::TransitionEnd { tokens } => format!("tokens={tokens}"),
            TraceEventKind::TokenEmitted { desc, .. } => desc.clone(),
            TraceEventKind::SelnetProbe { rel, candidates } => {
                format!("rel={rel} candidates={candidates}")
            }
            TraceEventKind::AlphaPass { rule, var } => {
                format!("rule={} var={var}", rule_name(names, *rule))
            }
            TraceEventKind::VirtualScan {
                rule,
                var,
                scanned,
                served,
            } => format!(
                "rule={} var={var} scanned={scanned} served={served}",
                rule_name(names, *rule)
            ),
            TraceEventKind::BetaProbe {
                rule,
                var,
                candidates,
                indexed,
            } => format!(
                "rule={} var={var} candidates={candidates}{}",
                rule_name(names, *rule),
                if *indexed { " indexed" } else { "" }
            ),
            TraceEventKind::Instantiation { rule, tids, token } => {
                let tids = tids
                    .iter()
                    .map(|t| t.map(|v| v.to_string()).unwrap_or_else(|| "-".to_string()))
                    .collect::<Vec<_>>()
                    .join(", ");
                let token = token.map(|t| format!(" token=#{t}")).unwrap_or_default();
                format!("rule={} tids=[{tids}]{token}", rule_name(names, *rule))
            }
            TraceEventKind::AgendaSchedule { rule, eligible } => {
                format!("rule={} eligible={eligible}", rule_name(names, *rule))
            }
            TraceEventKind::Firing {
                rule,
                instantiations,
                cause,
            } => format!(
                "rule={} instantiations={instantiations}{}",
                rule_name(names, *rule),
                cause.map(|c| format!(" cause=#{c}")).unwrap_or_default()
            ),
            TraceEventKind::CascadeDelta { firing, tokens } => {
                format!("firing=#{firing} tokens={tokens}")
            }
        };
        let dur = r
            .dur_ns
            .map(|d| format!(" dur={}ns", d))
            .unwrap_or_default();
        let _ = writeln!(
            out,
            "#{:<6} t{:<4} d{} {:<16} {}{}",
            r.seq,
            r.transition,
            r.depth,
            r.kind.kind_name(),
            detail,
            dur
        );
    }
    out
}

// ----- Chrome trace_event export ---------------------------------------------

/// Convert the recorder into a Chrome `trace_event` JSON document
/// (Perfetto / `chrome://tracing`). One track (`tid`) per cascade depth;
/// transition begin/end pairs and timed firings become complete
/// (`ph:"X"`) spans, everything else thread-scoped instants (`ph:"i"`).
/// Spans are emitted at their begin position, so `ts` stays monotone
/// within every track.
pub(crate) fn chrome_trace_json(records: &[TraceRecord], names: &HashMap<u64, String>) -> String {
    let mut events: Vec<String> = Vec::with_capacity(records.len());
    for (idx, r) in records.iter().enumerate() {
        match &r.kind {
            TraceEventKind::TransitionBegin { source } => {
                // Transitions are sequential (never nested): the matching
                // end is the next end event with the same transition id.
                let end = records[idx + 1..].iter().find(|e| {
                    e.transition == r.transition
                        && matches!(e.kind, TraceEventKind::TransitionEnd { .. })
                });
                let (src, extra) = match source {
                    TraceSource::Command(text) => (format!("command: {text}"), String::new()),
                    TraceSource::RuleAction { rule, firing } => (
                        format!("action of {}", rule_name(names, *rule)),
                        format!(",\"firing\":{firing}"),
                    ),
                };
                let args = format!(
                    "{{\"seq\":{},\"transition\":{},\"source\":\"{}\"{}}}",
                    r.seq,
                    r.transition,
                    json_escape(&src),
                    extra
                );
                match end {
                    Some(e) => events.push(span(
                        &format!("transition {}", r.transition),
                        "transition",
                        r,
                        e.ts_ns - r.ts_ns,
                        &args,
                    )),
                    None => events.push(instant("transition-begin", "transition", r, &args)),
                }
            }
            // folded into the transition span above
            TraceEventKind::TransitionEnd { .. } => {}
            TraceEventKind::Firing {
                rule,
                instantiations,
                cause,
            } => {
                let name = format!("fire {}", rule_name(names, *rule));
                let args = format!(
                    "{{\"seq\":{},\"rule\":\"{}\",\"instantiations\":{},\"cause\":{}}}",
                    r.seq,
                    json_escape(&rule_name(names, *rule)),
                    instantiations,
                    cause
                        .map(|c| c.to_string())
                        .unwrap_or_else(|| "null".into())
                );
                match r.dur_ns {
                    Some(d) => events.push(span(&name, "firing", r, d, &args)),
                    None => events.push(instant(&name, "firing", r, &args)),
                }
            }
            other => {
                let args = instant_args(r, other, names);
                events.push(instant(other.kind_name(), "match", r, &args));
            }
        }
    }
    format!("{{\"traceEvents\":[{}]}}", events.join(","))
}

/// `ts`/`dur` are microseconds; keep nanosecond precision as fractions.
fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

fn span(name: &str, cat: &str, r: &TraceRecord, dur_ns: u64, args: &str) -> String {
    format!(
        "{{\"name\":\"{}\",\"cat\":\"{cat}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{},\"args\":{args}}}",
        json_escape(name),
        micros(r.ts_ns),
        micros(dur_ns),
        r.depth
    )
}

fn instant(name: &str, cat: &str, r: &TraceRecord, args: &str) -> String {
    format!(
        "{{\"name\":\"{}\",\"cat\":\"{cat}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":1,\"tid\":{},\"args\":{args}}}",
        json_escape(name),
        micros(r.ts_ns),
        r.depth
    )
}

fn instant_args(r: &TraceRecord, kind: &TraceEventKind, names: &HashMap<u64, String>) -> String {
    let body = match kind {
        TraceEventKind::TokenEmitted {
            kind,
            rel,
            tid,
            desc,
        } => format!(
            "\"kind\":\"{}\",\"rel\":\"{}\",\"tid\":{tid},\"desc\":\"{}\"",
            json_escape(kind),
            json_escape(rel),
            json_escape(desc)
        ),
        TraceEventKind::SelnetProbe { rel, candidates } => {
            format!(
                "\"rel\":\"{}\",\"candidates\":{candidates}",
                json_escape(rel)
            )
        }
        TraceEventKind::AlphaPass { rule, var } => format!(
            "\"rule\":\"{}\",\"var\":{var}",
            json_escape(&rule_name(names, *rule))
        ),
        TraceEventKind::VirtualScan {
            rule,
            var,
            scanned,
            served,
        } => format!(
            "\"rule\":\"{}\",\"var\":{var},\"scanned\":{scanned},\"served\":{served}",
            json_escape(&rule_name(names, *rule))
        ),
        TraceEventKind::BetaProbe {
            rule,
            var,
            candidates,
            indexed,
        } => format!(
            "\"rule\":\"{}\",\"var\":{var},\"candidates\":{candidates},\"indexed\":{indexed}",
            json_escape(&rule_name(names, *rule))
        ),
        TraceEventKind::Instantiation { rule, tids, token } => {
            let tids = tids
                .iter()
                .map(|t| {
                    t.map(|v| v.to_string())
                        .unwrap_or_else(|| "null".to_string())
                })
                .collect::<Vec<_>>()
                .join(",");
            format!(
                "\"rule\":\"{}\",\"tids\":[{tids}],\"token\":{}",
                json_escape(&rule_name(names, *rule)),
                token
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "null".into())
            )
        }
        TraceEventKind::AgendaSchedule { rule, eligible } => format!(
            "\"rule\":\"{}\",\"eligible\":{eligible}",
            json_escape(&rule_name(names, *rule))
        ),
        TraceEventKind::CascadeDelta { firing, tokens } => {
            format!("\"firing\":{firing},\"tokens\":{tokens}")
        }
        // handled by the caller before reaching here
        TraceEventKind::TransitionBegin { .. }
        | TraceEventKind::TransitionEnd { .. }
        | TraceEventKind::Firing { .. } => String::new(),
    };
    if body.is_empty() {
        format!("{{\"seq\":{}}}", r.seq)
    } else {
        format!("{{\"seq\":{},{body}}}", r.seq)
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_quotes_backslashes_and_controls() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        assert_eq!(json_escape("plain"), "plain");
    }

    #[test]
    fn micros_keeps_nanosecond_precision() {
        assert_eq!(micros(1_234_567), "1234.567");
        assert_eq!(micros(999), "0.999");
        assert_eq!(micros(0), "0.000");
    }
}
