//! Checkpoints, write-ahead logging, and crash recovery.
//!
//! The 1992 Ariel inherited durability from EXODUS persistent objects;
//! this module gives the reproduction the same property on top of the
//! [`ariel_storage::wal`] substrate. A *durability directory* holds two
//! files:
//!
//! * `snapshot.bin` — a full engine image written by
//!   [`Ariel::checkpoint`]: every relation's physical state, the rule
//!   catalog (definitions re-rendered to ARL source), the P-node rows of
//!   every active rule, and the conflict-resolution bookkeeping
//!   (tick, recency, previous sizes). Written to a temp file and
//!   renamed, so a crash mid-checkpoint leaves the old snapshot intact.
//! * `wal.log` — one record per event after the snapshot: top-level
//!   commands, transitions (the resolved DML command texts — the `[I, M]`
//!   Δ-set source), and explicit `run_rules` markers.
//!
//! [`Ariel::recover`] loads the snapshot, re-activates rules through the
//! normal activation path (rebuilding and priming the α/β network from
//! the restored relations), overwrites each P-node with the snapshotted
//! rows — a P-node carries *history* (matches consumed by earlier
//! firings are gone), which priming alone would resurrect — and then
//! replays the WAL tail through the ordinary execute path, so firings
//! and cascades regenerate exactly as they first happened. A torn final
//! record (crash mid-append) is detected by checksum and truncated away.
//!
//! What is *not* recovered: pending notifications
//! ([`ariel_query::Notification`]s not yet drained) are a volatile
//! delivery queue; replay regenerates the
//! notifications of replayed transitions, giving at-least-once delivery
//! across a crash. Command texts round-trip through the ARL
//! parser; string literals are re-rendered with escape sequences
//! (`\"`, `\\`, `\n`, `\t`), so values containing quotes, backslashes
//! or control characters survive replay intact.

use crate::engine::{Ariel, EngineOptions, EngineStats};
use crate::error::{ArielError, ArielResult};
use ariel_network::RuleId;
use ariel_query::{parse_command, BoundVar, Command};
use ariel_storage::wal::{
    self, crc32, put_str, put_u32, put_u64, put_u8, read_log, truncate_log, Dec, Durability,
    WalWriter,
};
use ariel_storage::{Tid, Tuple};
use std::io;
use std::path::Path;

/// Snapshot file name inside a durability directory.
pub const SNAPSHOT_FILE: &str = "snapshot.bin";
/// Write-ahead-log file name inside a durability directory.
pub const WAL_FILE: &str = "wal.log";

const SNAPSHOT_MAGIC: &[u8; 4] = b"ARSN";
const SNAPSHOT_VERSION: u32 = 1;

// WAL record kinds (first payload byte).
const REC_CMD: u8 = 1;
const REC_TRANSITION: u8 = 2;
const REC_RUN_RULES: u8 = 3;

/// What [`Ariel::recover`] found and did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Relations restored from the snapshot.
    pub relations: usize,
    /// Rules restored from the snapshot (installed + active).
    pub rules: usize,
    /// WAL records replayed after the snapshot.
    pub replayed: usize,
    /// Whether a torn/corrupt tail was found (and truncated away).
    pub torn_tail: bool,
    /// Errors raised by individual replayed records. A record that failed
    /// when first executed fails identically on replay, so entries here
    /// do not necessarily mean divergence; genuinely unexpected failures
    /// (e.g. unparseable record text) also land here rather than aborting
    /// recovery.
    pub replay_errors: Vec<String>,
}

fn io_err(ctx: &str, e: io::Error) -> ArielError {
    ArielError::Persist(format!("{ctx}: {e}"))
}

fn put_tuple(buf: &mut Vec<u8>, t: &Tuple) {
    put_u32(buf, t.values().len() as u32);
    for v in t.values() {
        wal::put_value(buf, v);
    }
}

fn get_tuple(dec: &mut Dec<'_>) -> ArielResult<Tuple> {
    let n = dec.u32()? as usize;
    let mut values = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        values.push(wal::get_value(dec)?);
    }
    Ok(Tuple::new(values))
}

fn put_bound_var(buf: &mut Vec<u8>, b: &BoundVar) {
    match b.tid {
        None => put_u8(buf, 0),
        Some(tid) => {
            put_u8(buf, 1);
            put_u64(buf, tid.0);
        }
    }
    put_tuple(buf, &b.tuple);
    match &b.prev {
        None => put_u8(buf, 0),
        Some(prev) => {
            put_u8(buf, 1);
            put_tuple(buf, prev);
        }
    }
}

fn get_bound_var(dec: &mut Dec<'_>) -> ArielResult<BoundVar> {
    let tid = if dec.u8()? != 0 {
        Some(Tid(dec.u64()?))
    } else {
        None
    };
    let tuple = get_tuple(dec)?;
    let prev = if dec.u8()? != 0 {
        Some(get_tuple(dec)?)
    } else {
        None
    };
    Ok(BoundVar { tid, tuple, prev })
}

fn put_u64_map(buf: &mut Vec<u8>, map: &std::collections::HashMap<u64, u64>) {
    let mut entries: Vec<_> = map.iter().collect();
    entries.sort();
    put_u32(buf, entries.len() as u32);
    for (k, v) in entries {
        put_u64(buf, *k);
        put_u64(buf, *v);
    }
}

fn get_u64_map(dec: &mut Dec<'_>) -> ArielResult<std::collections::HashMap<u64, u64>> {
    let n = dec.u32()? as usize;
    let mut map = std::collections::HashMap::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        let k = dec.u64()?;
        map.insert(k, dec.u64()?);
    }
    Ok(map)
}

/// Serialize the full engine state into a snapshot body.
fn encode_snapshot(db: &Ariel) -> Vec<u8> {
    let mut buf = Vec::new();
    put_u64(&mut buf, db.tick);
    put_u64(&mut buf, db.stats.transitions);
    put_u64(&mut buf, db.stats.tokens);
    put_u64(&mut buf, db.stats.firings);
    wal::encode_catalog(&db.catalog, &mut buf);
    // rules ordered by id, so restore re-installs them deterministically
    let mut rules: Vec<_> = db.rules.iter().collect();
    rules.sort_by_key(|r| r.id.0);
    put_u32(&mut buf, rules.len() as u32);
    for rule in &rules {
        put_u64(&mut buf, rule.id.0);
        put_u8(&mut buf, rule.is_active() as u8);
        put_str(&mut buf, &rule.def.to_string());
    }
    put_u64(&mut buf, db.rules.next_id());
    // P-node rows of active rules: match *history* priming can't rebuild
    let active: Vec<_> = rules.iter().filter(|r| r.is_active()).collect();
    put_u32(&mut buf, active.len() as u32);
    for rule in active {
        put_u64(&mut buf, rule.id.0);
        let rows = db
            .network
            .pnode(rule.id)
            .map(|p| p.rows())
            .unwrap_or_default();
        put_u32(&mut buf, rows.len() as u32);
        for row in rows {
            put_u32(&mut buf, row.len() as u32);
            for b in row {
                put_bound_var(&mut buf, b);
            }
        }
    }
    put_u64_map(&mut buf, &db.last_matched);
    let sizes: std::collections::HashMap<u64, u64> =
        db.prev_sizes.iter().map(|(k, v)| (*k, *v as u64)).collect();
    put_u64_map(&mut buf, &sizes);
    buf
}

impl Ariel {
    /// Write a checkpoint into `dir` (created if needed) and (re)start the
    /// write-ahead log there: the full engine state goes to
    /// `snapshot.bin` (via a temp file + rename, so the previous snapshot
    /// survives a crash mid-write), `wal.log` is reset to empty, and — if
    /// [`EngineOptions::durability`] is not [`Durability::Off`] — a log
    /// writer is attached so every subsequent command and transition is
    /// logged. Returns the snapshot size in bytes.
    ///
    /// This is also the *enable durability* verb: an engine logs nothing
    /// until its first checkpoint establishes the directory.
    pub fn checkpoint(&mut self, dir: impl AsRef<Path>) -> ArielResult<u64> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir).map_err(|e| io_err("creating durability dir", e))?;
        // detach the writer first (folding its telemetry into the
        // cumulative totals): its Drop syncs any unsynced batch
        self.wal_detach();
        let body = encode_snapshot(self);
        let mut image = Vec::with_capacity(16 + body.len());
        image.extend_from_slice(SNAPSHOT_MAGIC);
        put_u32(&mut image, SNAPSHOT_VERSION);
        put_u32(&mut image, body.len() as u32);
        put_u32(&mut image, crc32(&body));
        image.extend_from_slice(&body);
        let tmp = dir.join("snapshot.tmp");
        let snap = dir.join(SNAPSHOT_FILE);
        {
            use std::io::Write as _;
            let mut f =
                std::fs::File::create(&tmp).map_err(|e| io_err("creating snapshot temp", e))?;
            f.write_all(&image)
                .map_err(|e| io_err("writing snapshot", e))?;
            f.sync_all().map_err(|e| io_err("syncing snapshot", e))?;
        }
        std::fs::rename(&tmp, &snap).map_err(|e| io_err("publishing snapshot", e))?;
        // the log restarts empty: everything it held is in the snapshot now
        let wal_path = dir.join(WAL_FILE);
        let f = std::fs::File::create(&wal_path).map_err(|e| io_err("resetting wal", e))?;
        f.sync_all().map_err(|e| io_err("syncing wal", e))?;
        drop(f);
        if self.options.durability != Durability::Off {
            self.wal = Some(
                WalWriter::open(&wal_path, self.options.durability)
                    .map_err(|e| io_err("opening wal", e))?,
            );
        }
        self.wal_dir = Some(dir.to_path_buf());
        Ok(image.len() as u64)
    }

    /// Rebuild an engine from a durability directory: load `snapshot.bin`,
    /// re-activate rules (rebuilding and priming the discrimination
    /// network from the restored relations), restore P-node match history,
    /// replay the `wal.log` tail through the normal execute path, truncate
    /// any torn final record, and re-attach the log writer per
    /// `options.durability`. The network backend and all other knobs come
    /// from `options`, so a snapshot taken under A-TREAT can be recovered
    /// onto Rete (the equivalence oracle in `tests/durability.rs` leans on
    /// this).
    pub fn recover(
        dir: impl AsRef<Path>,
        options: EngineOptions,
    ) -> ArielResult<(Ariel, RecoveryReport)> {
        let dir = dir.as_ref();
        let snap_path = dir.join(SNAPSHOT_FILE);
        let image = std::fs::read(&snap_path)
            .map_err(|e| io_err(&format!("reading {}", snap_path.display()), e))?;
        let mut dec = Dec::new(&image);
        let magic = [dec.u8()?, dec.u8()?, dec.u8()?, dec.u8()?];
        if &magic != SNAPSHOT_MAGIC {
            return Err(ArielError::Persist("not an Ariel snapshot".into()));
        }
        let version = dec.u32()?;
        if version != SNAPSHOT_VERSION {
            return Err(ArielError::Persist(format!(
                "unsupported snapshot version {version}"
            )));
        }
        let body_len = dec.u32()? as usize;
        let crc = dec.u32()?;
        if dec.remaining() != body_len {
            return Err(ArielError::Persist(format!(
                "snapshot body is {} bytes, header says {body_len}",
                dec.remaining()
            )));
        }
        if crc32(&image[16..]) != crc {
            return Err(ArielError::Persist("snapshot checksum mismatch".into()));
        }
        let mut report = RecoveryReport::default();
        let mut db = Ariel::with_options(options);
        let tick = dec.u64()?;
        let stats = EngineStats {
            transitions: dec.u64()?,
            tokens: dec.u64()?,
            firings: dec.u64()?,
        };
        report.relations = wal::decode_into_catalog(&mut dec, &mut db.catalog)?;
        let n_rules = dec.u32()? as usize;
        let mut active_names = Vec::new();
        for _ in 0..n_rules {
            let id = RuleId(dec.u64()?);
            let active = dec.u8()? != 0;
            let src = dec.str()?;
            let def = match parse_command(&src) {
                Ok(Command::DefineRule(def)) => def,
                Ok(_) | Err(_) => {
                    return Err(ArielError::Persist(format!(
                        "snapshot rule {} does not re-parse as a rule definition: {src}",
                        id.0
                    )));
                }
            };
            let name = def.name.clone();
            db.rules.restore(def, id)?;
            if active {
                active_names.push(name);
            }
        }
        let next_rule_id = dec.u64()?;
        report.rules = n_rules;
        // activation rebuilds and primes the network from the restored
        // relations — the same path a live engine takes
        for name in &active_names {
            db.activate_rule(name)?;
        }
        db.rules.set_next_id(next_rule_id);
        // …then the primed P-nodes are overwritten with the snapshotted
        // rows: consumed matches must stay consumed
        let n_pnodes = dec.u32()? as usize;
        for _ in 0..n_pnodes {
            let id = RuleId(dec.u64()?);
            let n_rows = dec.u32()? as usize;
            let mut rows = Vec::with_capacity(n_rows.min(1 << 16));
            for _ in 0..n_rows {
                let n_vars = dec.u32()? as usize;
                let mut row = Vec::with_capacity(n_vars.min(1 << 8));
                for _ in 0..n_vars {
                    row.push(get_bound_var(&mut dec)?);
                }
                rows.push(row);
            }
            db.network.set_pnode_rows(id, rows);
        }
        db.last_matched = get_u64_map(&mut dec)?;
        db.prev_sizes = get_u64_map(&mut dec)?
            .into_iter()
            .map(|(k, v)| (k, v as usize))
            .collect();
        db.tick = tick;
        db.stats = stats;
        // replay the log tail through the ordinary execute path, with no
        // writer attached (nothing is re-logged); firings and cascades
        // regenerate exactly as they first happened
        let wal_path = dir.join(WAL_FILE);
        let scan = read_log(&wal_path).map_err(|e| io_err("reading wal", e))?;
        report.torn_tail = scan.torn;
        for (i, record) in scan.records.iter().enumerate() {
            report.replayed += 1;
            if let Err(e) = db.replay_record(record) {
                report.replay_errors.push(format!("record {i}: {e}"));
            }
        }
        if scan.torn {
            truncate_log(&wal_path, scan.valid_len).map_err(|e| io_err("truncating wal", e))?;
        }
        db.wal_totals.replay_errors = report.replay_errors.len() as u64;
        if db.options.durability != Durability::Off {
            db.wal = Some(
                WalWriter::open(&wal_path, db.options.durability)
                    .map_err(|e| io_err("opening wal", e))?,
            );
        }
        db.wal_dir = Some(dir.to_path_buf());
        Ok((db, report))
    }

    /// Apply one WAL record during recovery.
    fn replay_record(&mut self, record: &[u8]) -> ArielResult<()> {
        let mut dec = Dec::new(record);
        match dec.u8()? {
            REC_CMD => {
                let cmd = parse_command(&dec.str()?)?;
                self.execute_command(&cmd)?;
            }
            REC_TRANSITION => {
                let n = dec.u32()? as usize;
                let mut cmds = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    cmds.push(parse_command(&dec.str()?)?);
                }
                // a block reproduces the original transition boundary:
                // one Δ-set per command, one recognize-act cycle
                self.execute_command(&Command::Block(cmds))?;
            }
            REC_RUN_RULES => {
                self.run_rules()?;
            }
            t => {
                return Err(ArielError::Persist(format!("unknown WAL record kind {t}")));
            }
        }
        Ok(())
    }

    /// Change the fsync policy. With a durability directory established
    /// (after [`Ariel::checkpoint`] or [`Ariel::recover`]) the log writer
    /// is re-opened in the new mode immediately — including detaching it
    /// entirely for [`Durability::Off`]; otherwise this only sets the
    /// policy the next checkpoint will adopt.
    pub fn set_durability(&mut self, durability: Durability) -> ArielResult<()> {
        self.options.durability = durability;
        if let Some(dir) = self.wal_dir.clone() {
            self.wal_detach(); // Drop syncs pending records
            if durability != Durability::Off {
                self.wal = Some(
                    WalWriter::open(dir.join(WAL_FILE), durability)
                        .map_err(|e| io_err("opening wal", e))?,
                );
            }
        }
        Ok(())
    }

    /// The durability directory, once established by a checkpoint or
    /// recovery.
    pub fn wal_dir(&self) -> Option<&Path> {
        self.wal_dir.as_deref()
    }

    /// WAL records appended since the writer was (re-)attached. 0 when no
    /// writer is attached (durability off).
    pub fn wal_records(&self) -> u64 {
        self.wal.as_ref().map(|w| w.records()).unwrap_or(0)
    }

    /// WAL bytes appended since the writer was (re-)attached (framing
    /// included). 0 when no writer is attached.
    pub fn wal_bytes(&self) -> u64 {
        self.wal.as_ref().map(|w| w.bytes()).unwrap_or(0)
    }

    /// Detach the live WAL writer, folding its telemetry (records, bytes,
    /// fsync count and latency histogram) into the cumulative
    /// [`crate::obs::WalTotals`] first, so [`Ariel::wal_metrics`] keeps
    /// engine-lifetime figures across checkpoints and durability-mode
    /// changes. The writer's Drop syncs any unsynced batch.
    pub(crate) fn wal_detach(&mut self) {
        if let Some(w) = self.wal.take() {
            self.wal_totals.records += w.records();
            self.wal_totals.bytes += w.bytes();
            self.wal_totals.fsyncs += w.fsyncs();
            self.wal_totals.fsync_ns.merge(w.fsync_ns());
        }
    }

    /// Merged WAL telemetry snapshot: the cumulative totals of every
    /// writer this engine has detached, plus the live writer's figures.
    /// Unlike [`Ariel::wal_records`]/[`Ariel::wal_bytes`] (which report
    /// the live writer only, resetting at each checkpoint), this view
    /// spans the engine's lifetime; it feeds the `"wal"` section of
    /// [`Ariel::metrics_json`] and the `ariel_wal_*` Prometheus families.
    pub fn wal_metrics(&self) -> crate::obs::WalMetrics {
        let mut m = crate::obs::WalMetrics {
            attached: self.wal.is_some(),
            records: self.wal_totals.records,
            bytes: self.wal_totals.bytes,
            fsyncs: self.wal_totals.fsyncs,
            fsync_ns: self.wal_totals.fsync_ns.clone(),
            replay_errors: self.wal_totals.replay_errors,
        };
        if let Some(w) = &self.wal {
            m.records += w.records();
            m.bytes += w.bytes();
            m.fsyncs += w.fsyncs();
            m.fsync_ns.merge(w.fsync_ns());
        }
        m
    }

    /// Force an fsync of the attached log writer, if any.
    pub fn wal_sync(&mut self) -> ArielResult<()> {
        if let Some(w) = self.wal.as_mut() {
            w.sync().map_err(|e| io_err("syncing wal", e))?;
        }
        Ok(())
    }

    fn wal_append(&mut self, payload: &[u8]) -> ArielResult<()> {
        if let Some(w) = self.wal.as_mut() {
            w.append(payload)
                .map_err(|e| io_err("appending to wal", e))?;
        }
        Ok(())
    }

    /// Log a top-level schema/rule command (success or failure: a failed
    /// command can still leave effects, and replay reproduces the same
    /// outcome). No-op without an attached writer.
    pub(crate) fn wal_log_command(&mut self, cmd: &Command) -> ArielResult<()> {
        if self.wal.is_none() {
            return Ok(());
        }
        let mut buf = Vec::new();
        put_u8(&mut buf, REC_CMD);
        put_str(&mut buf, &cmd.to_string());
        self.wal_append(&buf)
    }

    /// Log one committed transition (its resolved DML command texts).
    /// No-op without an attached writer, and for transitions made solely
    /// of `retrieve`s — pure reads leave no state behind, so logging them
    /// would only grow the log and slow replay (an interactive session is
    /// mostly queries).
    pub(crate) fn wal_log_transition(&mut self, cmds: &[Command]) -> ArielResult<()> {
        if self.wal.is_none() || cmds.iter().all(|c| matches!(c, Command::Retrieve { .. })) {
            return Ok(());
        }
        let mut buf = Vec::new();
        put_u8(&mut buf, REC_TRANSITION);
        put_u32(&mut buf, cmds.len() as u32);
        for cmd in cmds {
            put_str(&mut buf, &cmd.to_string());
        }
        self.wal_append(&buf)
    }

    /// Log an explicit recognize-act cycle ([`Ariel::run_rules`]). No-op
    /// without an attached writer.
    pub(crate) fn wal_log_run_rules(&mut self) -> ArielResult<()> {
        if self.wal.is_none() {
            return Ok(());
        }
        self.wal_append(&[REC_RUN_RULES])
    }
}
