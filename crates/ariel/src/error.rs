//! Error type for the Ariel engine.

use ariel_query::QueryError;
use ariel_storage::StorageError;
use std::fmt;

/// Errors raised by the Ariel active DBMS.
#[derive(Debug, Clone, PartialEq)]
pub enum ArielError {
    /// Error from the query layer (parse, semantic, plan, eval).
    Query(QueryError),
    /// Error from the storage layer.
    Storage(StorageError),
    /// No rule with the given name.
    UnknownRule(String),
    /// A rule with the given name already exists.
    DuplicateRule(String),
    /// Rule is already active.
    AlreadyActive(String),
    /// Rule is not active.
    NotActive(String),
    /// A relation cannot be destroyed while an active rule references it.
    RelationInUse {
        /// The relation being destroyed.
        relation: String,
        /// An active rule referencing it.
        rule: String,
    },
    /// The recognize-act cycle exceeded the firing limit without reaching
    /// quiescence (runaway rule cascade).
    RunawayRules {
        /// The configured firing limit.
        limit: usize,
    },
    /// Error raised while executing a rule action, with the rule named.
    RuleAction {
        /// The rule whose action failed.
        rule: String,
        /// The underlying error.
        source: Box<ArielError>,
    },
    /// A durability operation failed: writing or syncing the write-ahead
    /// log, taking a checkpoint, or loading a snapshot (see
    /// `docs/DURABILITY.md`). Carries the rendered cause.
    Persist(String),
}

/// Result alias for engine operations.
pub type ArielResult<T> = Result<T, ArielError>;

impl fmt::Display for ArielError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArielError::Query(e) => write!(f, "{e}"),
            ArielError::Storage(e) => write!(f, "{e}"),
            ArielError::UnknownRule(n) => write!(f, "unknown rule: {n}"),
            ArielError::DuplicateRule(n) => write!(f, "rule already exists: {n}"),
            ArielError::AlreadyActive(n) => write!(f, "rule already active: {n}"),
            ArielError::NotActive(n) => write!(f, "rule not active: {n}"),
            ArielError::RelationInUse { relation, rule } => {
                write!(
                    f,
                    "relation `{relation}` is referenced by active rule `{rule}`"
                )
            }
            ArielError::RunawayRules { limit } => {
                write!(f, "recognize-act cycle exceeded {limit} rule firings")
            }
            ArielError::RuleAction { rule, source } => {
                write!(f, "while executing action of rule `{rule}`: {source}")
            }
            ArielError::Persist(m) => write!(f, "durability: {m}"),
        }
    }
}

impl std::error::Error for ArielError {}

impl From<QueryError> for ArielError {
    fn from(e: QueryError) -> Self {
        ArielError::Query(e)
    }
}

impl From<StorageError> for ArielError {
    fn from(e: StorageError) -> Self {
        ArielError::Storage(e)
    }
}
