//! Rule metadata: names, rulesets, priorities, activation state.

use ariel_network::RuleId;
use ariel_query::RuleDef;

/// The ruleset rules land in when none is specified (§2.1).
pub const DEFAULT_RULESET: &str = "default_rules";

/// Lifecycle state of an installed rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuleState {
    /// Syntax tree stored in the catalog; no network structures exist.
    Installed,
    /// Discrimination network built and primed; the rule participates in
    /// match.
    Active,
}

/// An installed rule: the persistent syntax tree plus bookkeeping.
#[derive(Debug, Clone)]
pub struct Rule {
    /// Unique rule name.
    pub name: String,
    /// Ruleset (grouping only, §2.1).
    pub ruleset: String,
    /// Priority for conflict resolution; higher fires first. Defaults to 0.
    pub priority: f64,
    /// Network identifier (assigned at install).
    pub id: RuleId,
    /// Activation state.
    pub state: RuleState,
    /// The rule definition as parsed ("installation involves storing a
    /// persistent copy of the rule syntax tree in the rule catalog", §6).
    pub def: RuleDef,
}

impl Rule {
    /// Build rule metadata from a definition.
    pub fn new(id: RuleId, def: RuleDef) -> Self {
        Rule {
            name: def.name.clone(),
            ruleset: def
                .ruleset
                .clone()
                .unwrap_or_else(|| DEFAULT_RULESET.to_string()),
            priority: def.priority.unwrap_or(0.0),
            id,
            state: RuleState::Installed,
            def,
        }
    }

    /// True iff the rule is active.
    pub fn is_active(&self) -> bool {
        self.state == RuleState::Active
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ariel_query::parse_command;
    use ariel_query::Command;

    fn def(src: &str) -> RuleDef {
        match parse_command(src).unwrap() {
            Command::DefineRule(d) => d,
            _ => panic!("not a rule"),
        }
    }

    #[test]
    fn defaults() {
        let r = Rule::new(RuleId(1), def("define rule r1 if emp.x > 1 then halt"));
        assert_eq!(r.ruleset, DEFAULT_RULESET);
        assert_eq!(r.priority, 0.0);
        assert_eq!(r.state, RuleState::Installed);
        assert!(!r.is_active());
    }

    #[test]
    fn explicit_ruleset_and_priority() {
        let r = Rule::new(
            RuleId(2),
            def("define rule r2 in payroll priority 7 if emp.x > 1 then halt"),
        );
        assert_eq!(r.ruleset, "payroll");
        assert_eq!(r.priority, 7.0);
    }
}
