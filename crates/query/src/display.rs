//! Pretty-printing of ASTs back to ARL/POSTQUEL source.
//!
//! The rule catalog stores rule definitions as syntax trees (§5.1); these
//! `Display` impls render them back to canonical source — used by rule
//! inspection (`Ariel::show_rule`) and round-trip tested against the
//! parser.

use crate::ast::{BinOp, Command, EventKind, Expr, FromItem, Literal, RuleDef, Target, UnaryOp};
use std::fmt;

/// Operator precedence for minimal parenthesization.
fn prec(op: BinOp) -> u8 {
    match op {
        BinOp::Or => 1,
        BinOp::And => 2,
        BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 3,
        BinOp::Add | BinOp::Sub => 4,
        BinOp::Mul | BinOp::Div => 5,
    }
}

/// Render a string literal with the lexer's escape sequences (`\"`, `\\`,
/// `\n`, `\t`), so rendered command texts — including those replayed from
/// the WAL — re-lex to the same value.
fn fmt_str_literal(s: &str, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    write!(f, "\"")?;
    for c in s.chars() {
        match c {
            '\\' => write!(f, "\\\\")?,
            '"' => write!(f, "\\\"")?,
            '\n' => write!(f, "\\n")?,
            '\t' => write!(f, "\\t")?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}

fn fmt_expr(e: &Expr, parent: u8, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match e {
        Expr::Literal(Literal::Int(i)) => write!(f, "{i}"),
        Expr::Literal(Literal::Float(x)) => {
            if x.fract() == 0.0 && x.is_finite() && x.abs() < 1e15 {
                write!(f, "{x:.1}")
            } else {
                write!(f, "{x}")
            }
        }
        Expr::Literal(Literal::Str(s)) => fmt_str_literal(s, f),
        Expr::Literal(Literal::Bool(b)) => write!(f, "{b}"),
        Expr::Attr {
            var,
            attr,
            previous,
        } => {
            if *previous {
                write!(f, "previous {var}.{attr}")
            } else {
                write!(f, "{var}.{attr}")
            }
        }
        Expr::New { var } => write!(f, "new({var})"),
        Expr::Unary { op, expr } => match op {
            UnaryOp::Not => {
                // `not` parses between `and` and comparisons: parenthesize
                // when embedded in anything tighter than `and`
                let needs_parens = parent > 2;
                if needs_parens {
                    write!(f, "(")?;
                }
                write!(f, "not ")?;
                fmt_expr(expr, 3, f)?;
                if needs_parens {
                    write!(f, ")")?;
                }
                Ok(())
            }
            UnaryOp::Neg => {
                write!(f, "-")?;
                fmt_expr(expr, 6, f)
            }
        },
        Expr::Binary { op, left, right } => {
            let p = prec(*op);
            let needs_parens = p < parent;
            if needs_parens {
                write!(f, "(")?;
            }
            // comparisons are non-associative in the grammar: both operands
            // must parenthesize nested comparisons
            let left_ctx = if op.is_comparison() { p + 1 } else { p };
            fmt_expr(left, left_ctx, f)?;
            write!(f, " {op} ")?;
            // right side binds one tighter to keep left-associativity
            fmt_expr(right, p + 1, f)?;
            if needs_parens {
                write!(f, ")")?;
            }
            Ok(())
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_expr(self, 0, f)
    }
}

fn fmt_from_where(
    f: &mut fmt::Formatter<'_>,
    from: &[FromItem],
    qual: &Option<Expr>,
) -> fmt::Result {
    if !from.is_empty() {
        write!(f, " from ")?;
        for (i, item) in from.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} in {}", item.var, item.rel)?;
        }
    }
    if let Some(q) = qual {
        write!(f, " where {q}")?;
    }
    Ok(())
}

impl fmt::Display for Command {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Command::CreateRelation { name, attrs } => {
                write!(f, "create {name} (")?;
                for (i, (a, t)) in attrs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a} = {t}")?;
                }
                write!(f, ")")
            }
            Command::DestroyRelation { name } => write!(f, "destroy {name}"),
            Command::CreateIndex { rel, attr, kind } => {
                let k = match kind {
                    ariel_storage::IndexKind::BTree => "btree",
                    ariel_storage::IndexKind::Hash => "hash",
                };
                write!(f, "define index on {rel} ({attr}) using {k}")
            }
            Command::Append {
                target,
                assignments,
                from,
                qual,
            } => {
                write!(f, "append to {target} (")?;
                for (i, (a, e)) in assignments.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a} = {e}")?;
                }
                write!(f, ")")?;
                fmt_from_where(f, from, qual)
            }
            Command::Delete { var, from, qual } => {
                write!(f, "delete {var}")?;
                fmt_from_where(f, from, qual)
            }
            Command::Replace {
                var,
                assignments,
                from,
                qual,
            } => {
                write!(f, "replace {var} (")?;
                for (i, (a, e)) in assignments.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a} = {e}")?;
                }
                write!(f, ")")?;
                fmt_from_where(f, from, qual)
            }
            Command::Retrieve {
                into,
                targets,
                from,
                qual,
            } => {
                write!(f, "retrieve ")?;
                if let Some(dest) = into {
                    write!(f, "into {dest} ")?;
                }
                write!(f, "(")?;
                for (i, t) in targets.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    match t {
                        Target::Expr { name, expr } => write!(f, "{name} = {expr}")?,
                        Target::All { var } => write!(f, "{var}.all")?,
                    }
                }
                write!(f, ")")?;
                fmt_from_where(f, from, qual)
            }
            Command::Block(cmds) => {
                write!(f, "do")?;
                for c in cmds {
                    write!(f, " {c}")?;
                }
                write!(f, " end")
            }
            Command::DefineRule(def) => write!(f, "{def}"),
            Command::DropRule { name } => write!(f, "destroy rule {name}"),
            Command::ActivateRule { name } => write!(f, "activate rule {name}"),
            Command::DeactivateRule { name } => write!(f, "deactivate rule {name}"),
            Command::Halt => write!(f, "halt"),
            Command::Notify {
                channel,
                targets,
                from,
                qual,
            } => {
                write!(f, "notify {channel} (")?;
                for (i, t) in targets.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    match t {
                        Target::Expr { name, expr } => write!(f, "{name} = {expr}")?,
                        Target::All { var } => write!(f, "{var}.all")?,
                    }
                }
                write!(f, ")")?;
                fmt_from_where(f, from, qual)
            }
            Command::ReplacePrimed {
                pvar,
                assignments,
                from,
                qual,
            } => {
                // primed commands have no surface syntax; render annotated
                write!(f, "replace {pvar} (")?;
                for (i, (a, e)) in assignments.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a} = {e}")?;
                }
                write!(f, ")")?;
                fmt_from_where(f, from, qual)?;
                write!(f, " # via P-node")
            }
            Command::DeletePrimed { pvar, from, qual } => {
                write!(f, "delete {pvar}")?;
                fmt_from_where(f, from, qual)?;
                write!(f, " # via P-node")
            }
        }
    }
}

impl fmt::Display for RuleDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "define rule {}", self.name)?;
        if let Some(rs) = &self.ruleset {
            write!(f, " in {rs}")?;
        }
        if let Some(p) = self.priority {
            if p.fract() == 0.0 {
                write!(f, " priority {}", p as i64)?;
            } else {
                write!(f, " priority {p}")?;
            }
        }
        if let Some(ev) = &self.on {
            match &ev.kind {
                EventKind::Append => write!(f, " on append to {}", ev.relation)?,
                EventKind::Delete => write!(f, " on delete from {}", ev.relation)?,
                EventKind::Replace(None) => write!(f, " on replace to {}", ev.relation)?,
                EventKind::Replace(Some(attrs)) => {
                    write!(f, " on replace to {} ({})", ev.relation, attrs.join(", "))?
                }
            }
        }
        if let Some(c) = &self.condition {
            write!(f, " if {c}")?;
            if !self.cond_from.is_empty() {
                write!(f, " from ")?;
                for (i, item) in self.cond_from.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{} in {}", item.var, item.rel)?;
                }
            }
        }
        write!(f, " then ")?;
        if self.action.len() == 1 {
            write!(f, "{}", self.action[0])
        } else {
            write!(f, "do")?;
            for c in &self.action {
                write!(f, " {c}")?;
            }
            write!(f, " end")
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::parser::{parse_command, parse_expr};

    fn roundtrip_expr(src: &str) {
        let e = parse_expr(src).expect("parse");
        let printed = e.to_string();
        let e2 = parse_expr(&printed)
            .unwrap_or_else(|err| panic!("reparse of `{printed}` failed: {err}"));
        assert_eq!(e, e2, "roundtrip changed `{src}` → `{printed}`");
    }

    fn roundtrip_cmd(src: &str) {
        let c = parse_command(src).expect("parse");
        let printed = c.to_string();
        let c2 = parse_command(&printed)
            .unwrap_or_else(|err| panic!("reparse of `{printed}` failed: {err}"));
        assert_eq!(c, c2, "roundtrip changed `{src}` → `{printed}`");
    }

    #[test]
    fn expr_roundtrips() {
        for src in [
            "emp.sal > 1.1 * previous emp.sal",
            "(emp.a + emp.b) * emp.c = 10",
            "emp.a - (emp.b - emp.c)",
            "not (emp.x = 1 or emp.y = 2) and emp.z != 3",
            "new(emp) and emp.dno = dept.dno",
            "-emp.x < - (emp.y + 1)",
            "emp.name = \"Bob\"",
            "emp.flag = true or emp.flag = false",
            "emp.a / emp.b / emp.c > 0",
        ] {
            roundtrip_expr(src);
        }
    }

    #[test]
    fn command_roundtrips() {
        for src in [
            "create emp (name = string, age = int, sal = float, ok = bool)",
            "destroy emp",
            "define index on emp (sal) using btree",
            "define index on emp (dno) using hash",
            r#"append to emp (name = "x", sal = emp.sal + 1) where emp.dno = 1"#,
            "delete e from e in emp where e.sal > 10",
            r#"replace emp (sal = 0, name = "gone") where emp.sal < 0"#,
            "retrieve into out (emp.all, x = emp.sal * 2) from e in emp where emp.dno = e.dno",
            "do append to t (x = 1) delete t where t.x = 0 end",
            "destroy rule r",
            "activate rule r",
            "deactivate rule r",
            "halt",
        ] {
            roundtrip_cmd(src);
        }
    }

    #[test]
    fn rule_roundtrips() {
        for src in [
            r#"define rule NoBobs on append emp if emp.name = "Bob" then delete emp"#,
            "define rule r in payroll priority 10 if emp.sal > 1 then halt",
            "define rule raiselimit if emp.sal > 1.1 * previous emp.sal \
             then append to err(name = emp.name)",
            "define rule d on replace emp (jno, dno) \
             if a.jno = emp.jno from a in job then halt",
            "define rule multi if emp.sal > 0 then do halt delete emp end",
            "define rule ev on delete emp then append to log(x = emp.sal)",
        ] {
            roundtrip_cmd(src);
        }
    }

    #[test]
    fn string_escapes_roundtrip() {
        // values that only survive because the renderer escapes what the
        // lexer decodes — the WAL replay path depends on this closure
        for src in [
            r#"emp.name = "quo\"te""#,
            r#"emp.name = "back\\slash""#,
            r#"emp.name = "line\none""#,
            r#"emp.name = "tab\tstop""#,
            r#"append to emp (name = "a\"b\\c\nd")"#,
        ] {
            roundtrip_expr_or_cmd(src);
        }
        // rendering normalizes a single-quoted literal into escaped
        // double-quoted form
        let e = parse_expr("emp.name = 'it\"s'").expect("parse");
        let printed = e.to_string();
        assert!(printed.contains(r#""it\"s""#), "{printed}");
        assert_eq!(parse_expr(&printed).unwrap(), e);
    }

    fn roundtrip_expr_or_cmd(src: &str) {
        if src.starts_with("append") {
            roundtrip_cmd(src);
        } else {
            roundtrip_expr(src);
        }
    }

    #[test]
    fn precedence_preserved() {
        // and/or mix must not change meaning when printed
        let e = parse_expr("emp.a = 1 or emp.b = 2 and emp.c = 3").unwrap();
        let printed = e.to_string();
        assert_eq!(parse_expr(&printed).unwrap(), e);
        let e = parse_expr("(emp.a = 1 or emp.b = 2) and emp.c = 3").unwrap();
        let printed = e.to_string();
        assert_eq!(parse_expr(&printed).unwrap(), e);
    }
}

#[cfg(test)]
mod proptests {
    use crate::ast::*;
    use crate::parser::{parse_command, parse_expr};
    use proptest::prelude::*;

    fn ident() -> impl Strategy<Value = String> {
        // identifiers that are not keywords
        "[a-z][a-z0-9_]{0,6}".prop_filter("not a keyword", |s| {
            ![
                "create",
                "destroy",
                "define",
                "rule",
                "index",
                "on",
                "if",
                "then",
                "do",
                "end",
                "append",
                "delete",
                "replace",
                "retrieve",
                "into",
                "from",
                "where",
                "in",
                "and",
                "or",
                "not",
                "previous",
                "new",
                "halt",
                "notify",
                "activate",
                "deactivate",
                "priority",
                "using",
                "to",
                "all",
                "true",
                "false",
            ]
            .contains(&s.as_str())
        })
    }

    fn literal() -> impl Strategy<Value = Expr> {
        prop_oneof![
            (-1000i64..1000).prop_map(|i| Expr::Literal(Literal::Int(i))),
            (-100.0f64..100.0).prop_map(|x| Expr::Literal(Literal::Float(x))),
            // includes the escape-worthy characters so proptest exercises
            // the lexer/renderer escape closure
            "[a-zA-Z0-9 \"'\\\\\n\t]{0,8}".prop_map(|s| Expr::Literal(Literal::Str(s))),
            any::<bool>().prop_map(|b| Expr::Literal(Literal::Bool(b))),
        ]
    }

    fn expr() -> impl Strategy<Value = Expr> {
        let leaf = prop_oneof![
            literal(),
            (ident(), ident(), any::<bool>()).prop_map(|(var, attr, previous)| {
                Expr::Attr {
                    var,
                    attr,
                    previous,
                }
            }),
            ident().prop_map(|var| Expr::New { var }),
        ];
        leaf.prop_recursive(4, 32, 3, |inner| {
            prop_oneof![
                (
                    inner.clone(),
                    inner.clone(),
                    prop_oneof![
                        Just(BinOp::Add),
                        Just(BinOp::Sub),
                        Just(BinOp::Mul),
                        Just(BinOp::Div),
                        Just(BinOp::Eq),
                        Just(BinOp::Ne),
                        Just(BinOp::Lt),
                        Just(BinOp::Le),
                        Just(BinOp::Gt),
                        Just(BinOp::Ge),
                        Just(BinOp::And),
                        Just(BinOp::Or),
                    ]
                )
                    .prop_map(|(l, r, op)| Expr::Binary {
                        op,
                        left: Box::new(l),
                        right: Box::new(r),
                    }),
                inner.clone().prop_map(|e| Expr::Unary {
                    op: UnaryOp::Not,
                    expr: Box::new(e),
                }),
                inner.prop_map(|e| Expr::Unary {
                    op: UnaryOp::Neg,
                    expr: Box::new(e),
                }),
            ]
        })
    }

    /// Negation of a literal prints as `-5`, which reparses as a negative
    /// literal — normalize before comparing.
    fn normalize(e: &Expr) -> Expr {
        match e {
            Expr::Unary {
                op: UnaryOp::Neg,
                expr,
            } => match normalize(expr) {
                Expr::Literal(Literal::Int(i)) => Expr::Literal(Literal::Int(-i)),
                Expr::Literal(Literal::Float(x)) => Expr::Literal(Literal::Float(-x)),
                inner => Expr::Unary {
                    op: UnaryOp::Neg,
                    expr: Box::new(inner),
                },
            },
            Expr::Unary { op, expr } => Expr::Unary {
                op: *op,
                expr: Box::new(normalize(expr)),
            },
            Expr::Binary { op, left, right } => Expr::Binary {
                op: *op,
                left: Box::new(normalize(left)),
                right: Box::new(normalize(right)),
            },
            other => other.clone(),
        }
    }

    proptest! {
        /// print → parse is the identity on expression trees.
        #[test]
        fn expr_print_parse_roundtrip(e in expr()) {
            let printed = e.to_string();
            let reparsed = parse_expr(&printed)
                .map_err(|err| TestCaseError::fail(format!("`{printed}`: {err}")))?;
            prop_assert_eq!(normalize(&reparsed), normalize(&e), "printed as `{}`", printed);
        }

        /// print → parse is the identity on a family of commands.
        #[test]
        fn command_print_parse_roundtrip(
            rel in ident(),
            var in ident(),
            attrs in proptest::collection::vec((ident(), expr()), 1..4),
            qual in proptest::option::of(expr()),
        ) {
            // dedup attribute names to keep the command well-formed
            let mut seen = std::collections::HashSet::new();
            let attrs: Vec<(String, Expr)> = attrs
                .into_iter()
                .filter(|(n, _)| seen.insert(n.clone()))
                .collect();
            for cmd in [
                Command::Append {
                    target: rel.clone(),
                    assignments: attrs.clone(),
                    from: vec![],
                    qual: qual.clone(),
                },
                Command::Replace {
                    var: var.clone(),
                    assignments: attrs.clone(),
                    from: vec![],
                    qual: qual.clone(),
                },
                Command::Delete { var: var.clone(), from: vec![], qual: qual.clone() },
            ] {
                let printed = cmd.to_string();
                let reparsed = parse_command(&printed)
                    .map_err(|err| TestCaseError::fail(format!("`{printed}`: {err}")))?;
                prop_assert_eq!(
                    norm_cmd(&reparsed), norm_cmd(&cmd), "printed as `{}`", printed
                );
            }
        }
    }

    fn norm_cmd(c: &Command) -> Command {
        match c {
            Command::Append {
                target,
                assignments,
                from,
                qual,
            } => Command::Append {
                target: target.clone(),
                assignments: assignments
                    .iter()
                    .map(|(n, e)| (n.clone(), normalize(e)))
                    .collect(),
                from: from.clone(),
                qual: qual.as_ref().map(normalize),
            },
            Command::Replace {
                var,
                assignments,
                from,
                qual,
            } => Command::Replace {
                var: var.clone(),
                assignments: assignments
                    .iter()
                    .map(|(n, e)| (n.clone(), normalize(e)))
                    .collect(),
                from: from.clone(),
                qual: qual.as_ref().map(normalize),
            },
            Command::Delete { var, from, qual } => Command::Delete {
                var: var.clone(),
                from: from.clone(),
                qual: qual.as_ref().map(normalize),
            },
            other => other.clone(),
        }
    }
}
