//! Plan execution and DML application.
//!
//! Plans are executed by materialization (the data is in memory already).
//! DML commands first materialize the full set of qualifying rows, then
//! apply mutations — the paper's commands are set-oriented, so a command
//! never observes its own updates. Every mutation is recorded as a
//! [`Change`]; the rule engine feeds changes into the Δ-sets that drive
//! token generation (§4.3.1).

use crate::binding::{BoundVar, Pnode, Row};
use crate::error::{QueryError, QueryResult};
use crate::expr::{eval, eval_pred};
use crate::optimizer::Optimizer;
use crate::plan::{IndexKey, Plan};
use crate::semantic::{infer_type, RCommand};
use ariel_storage::{AttrType, Catalog, Schema, Tid, Tuple, Value};
use std::collections::HashSet;

/// One physical change applied to a relation.
#[derive(Debug, Clone, PartialEq)]
pub enum Change {
    /// A tuple was inserted.
    Inserted {
        /// Relation name.
        rel: String,
        /// New tuple's TID.
        tid: Tid,
        /// Inserted value.
        new: Tuple,
    },
    /// A tuple was deleted.
    Deleted {
        /// Relation name.
        rel: String,
        /// Deleted tuple's TID.
        tid: Tid,
        /// Value at deletion.
        old: Tuple,
    },
    /// A tuple was replaced in place. `attrs` lists the attribute positions
    /// named in the replace command's target list (the paper's
    /// `replace(target-list)` event specifier carries exactly these).
    Updated {
        /// Relation name.
        rel: String,
        /// Updated tuple's TID.
        tid: Tid,
        /// Value before the update.
        old: Tuple,
        /// Value after the update.
        new: Tuple,
        /// Attribute positions named in the command's target list.
        attrs: Vec<usize>,
    },
}

impl Change {
    /// The relation this change touched.
    pub fn relation(&self) -> &str {
        match self {
            Change::Inserted { rel, .. }
            | Change::Deleted { rel, .. }
            | Change::Updated { rel, .. } => rel,
        }
    }
}

/// An asynchronous notification produced by a `notify` command (§8's
/// future-work item: alert monitors, stock tickers).
#[derive(Debug, Clone, PartialEq)]
pub struct Notification {
    /// Channel the notification is delivered on.
    pub channel: String,
    /// Column names.
    pub columns: Vec<String>,
    /// One row per qualifying binding.
    pub rows: Vec<Vec<Value>>,
}

/// Output of executing one command.
#[derive(Debug, Clone, Default)]
pub struct CmdOutput {
    /// Result column names (`retrieve` only).
    pub columns: Vec<String>,
    /// Result rows (`retrieve` only).
    pub rows: Vec<Vec<Value>>,
    /// Physical changes applied (DML only).
    pub changes: Vec<Change>,
    /// Notifications emitted (`notify` only).
    pub notifications: Vec<Notification>,
}

/// Execution context for running a plan.
pub struct ExecCtx<'a> {
    /// Relation catalog plans read from.
    pub catalog: &'a Catalog,
    /// P-node supplying rule-action bindings, if any.
    pub pnode: Option<&'a Pnode>,
    /// Number of variable slots in produced rows.
    pub nvars: usize,
}

/// Execute a plan to completion.
pub fn run_plan(plan: &Plan, ctx: &ExecCtx<'_>) -> QueryResult<Vec<Row>> {
    match plan {
        Plan::SeqScan { rel, var, filter } => {
            let rel_ref = ctx.catalog.require(rel)?;
            let rel_b = rel_ref.borrow();
            let mut out = Vec::new();
            for (tid, tuple) in rel_b.scan() {
                let mut row = Row::unbound(ctx.nvars);
                row.slots[*var] = Some(BoundVar::plain(tid, tuple.clone()));
                if match filter {
                    Some(f) => eval_pred(f, &row)?,
                    None => true,
                } {
                    out.push(row);
                }
            }
            Ok(out)
        }
        Plan::IndexScan {
            rel,
            var,
            attr,
            key,
            filter,
        } => {
            let rel_ref = ctx.catalog.require(rel)?;
            let rel_b = rel_ref.borrow();
            let hits: Vec<(Tid, Tuple)> = match key {
                IndexKey::Eq(v) => rel_b
                    .probe_eq(*attr, v)
                    .ok_or_else(|| QueryError::Plan(format!("no index on {rel}.#{attr}")))?
                    .into_iter()
                    .map(|(t, tu)| (t, tu.clone()))
                    .collect(),
                IndexKey::Range(lo, hi) => rel_b
                    .probe_range(*attr, as_ref_bound(lo), as_ref_bound(hi))
                    .ok_or_else(|| QueryError::Plan(format!("no range index on {rel}.#{attr}")))?
                    .into_iter()
                    .map(|(t, tu)| (t, tu.clone()))
                    .collect(),
            };
            let mut out = Vec::new();
            for (tid, tuple) in hits {
                let mut row = Row::unbound(ctx.nvars);
                row.slots[*var] = Some(BoundVar::plain(tid, tuple));
                if match filter {
                    Some(f) => eval_pred(f, &row)?,
                    None => true,
                } {
                    out.push(row);
                }
            }
            Ok(out)
        }
        Plan::PnodeScan { binds, filter } => {
            let pnode = ctx
                .pnode
                .ok_or_else(|| QueryError::Plan("PnodeScan without a P-node".into()))?;
            let mut out = Vec::new();
            for prow in pnode.rows() {
                let mut row = Row::unbound(ctx.nvars);
                for (var, col) in binds {
                    row.slots[*var] = Some(prow[*col].clone());
                }
                if match filter {
                    Some(f) => eval_pred(f, &row)?,
                    None => true,
                } {
                    out.push(row);
                }
            }
            Ok(out)
        }
        Plan::NestedLoop { left, right, cond } => {
            let lrows = run_plan(left, ctx)?;
            let rrows = run_plan(right, ctx)?;
            let mut out = Vec::new();
            for l in &lrows {
                for r in &rrows {
                    let m = l.merge(r);
                    if match cond {
                        Some(c) => eval_pred(c, &m)?,
                        None => true,
                    } {
                        out.push(m);
                    }
                }
            }
            Ok(out)
        }
        Plan::IndexedLoop {
            left,
            rel,
            var,
            attr,
            key_expr,
            filter,
            cond,
        } => {
            let lrows = run_plan(left, ctx)?;
            let rel_ref = ctx.catalog.require(rel)?;
            let rel_b = rel_ref.borrow();
            let mut out = Vec::new();
            for l in &lrows {
                let key = eval(key_expr, l)?;
                if key.is_null() {
                    continue;
                }
                let hits = rel_b
                    .probe_eq(*attr, &key)
                    .ok_or_else(|| QueryError::Plan(format!("no index on {rel}.#{attr}")))?;
                for (tid, tuple) in hits {
                    let mut row = l.clone();
                    row.slots[*var] = Some(BoundVar::plain(tid, tuple.clone()));
                    if let Some(f) = filter {
                        if !eval_pred(f, &row)? {
                            continue;
                        }
                    }
                    if let Some(c) = cond {
                        if !eval_pred(c, &row)? {
                            continue;
                        }
                    }
                    out.push(row);
                }
            }
            Ok(out)
        }
        Plan::SortMergeJoin {
            left,
            right,
            left_key,
            right_key,
            residual,
        } => {
            let lrows = run_plan(left, ctx)?;
            let rrows = run_plan(right, ctx)?;
            let mut lk: Vec<(Value, Row)> = lrows
                .into_iter()
                .map(|r| Ok((eval(left_key, &r)?, r)))
                .collect::<QueryResult<_>>()?;
            let mut rk: Vec<(Value, Row)> = rrows
                .into_iter()
                .map(|r| Ok((eval(right_key, &r)?, r)))
                .collect::<QueryResult<_>>()?;
            lk.sort_by(|a, b| a.0.total_cmp(&b.0));
            rk.sort_by(|a, b| a.0.total_cmp(&b.0));
            let mut out = Vec::new();
            let (mut i, mut j) = (0usize, 0usize);
            while i < lk.len() && j < rk.len() {
                let ord = lk[i].0.total_cmp(&rk[j].0);
                match ord {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        if lk[i].0.is_null() {
                            // nulls never join
                            i += 1;
                            continue;
                        }
                        // find the equal run on the right
                        let mut j2 = j;
                        while j2 < rk.len()
                            && rk[j2].0.total_cmp(&lk[i].0) == std::cmp::Ordering::Equal
                        {
                            j2 += 1;
                        }
                        for r in &rk[j..j2] {
                            let m = lk[i].1.merge(&r.1);
                            if match residual {
                                Some(c) => eval_pred(c, &m)?,
                                None => true,
                            } {
                                out.push(m);
                            }
                        }
                        i += 1;
                    }
                }
            }
            Ok(out)
        }
        Plan::Filter { input, pred } => {
            let rows = run_plan(input, ctx)?;
            let mut out = Vec::new();
            for r in rows {
                if eval_pred(pred, &r)? {
                    out.push(r);
                }
            }
            Ok(out)
        }
    }
}

fn as_ref_bound(b: &std::ops::Bound<Value>) -> std::ops::Bound<&Value> {
    match b {
        std::ops::Bound::Included(v) => std::ops::Bound::Included(v),
        std::ops::Bound::Excluded(v) => std::ops::Bound::Excluded(v),
        std::ops::Bound::Unbounded => std::ops::Bound::Unbounded,
    }
}

/// Produce the qualification plan for a resolved command, or `None` for
/// commands with no tuple variables. Exposed so rule-action plans can be
/// cached and replayed (the pre-planning strategies of §5.3).
pub fn plan_command(
    rcmd: &RCommand,
    catalog: &Catalog,
    pnode: Option<&Pnode>,
) -> QueryResult<Option<Plan>> {
    let spec = rcmd.spec();
    if spec.vars.is_empty() {
        return Ok(None);
    }
    let optimizer = match pnode {
        Some(p) => Optimizer::with_pnode(catalog, p),
        None => Optimizer::new(catalog),
    };
    optimizer.plan(spec).map(Some)
}

/// Run the qualification of a resolved command with a pre-built plan,
/// returning the qualifying rows. Commands with no tuple variables yield a
/// single empty row (filtered by a constant qualification if present).
fn qualifying_rows(
    rcmd: &RCommand,
    plan: Option<&Plan>,
    catalog: &Catalog,
    pnode: Option<&Pnode>,
) -> QueryResult<Vec<Row>> {
    let spec = rcmd.spec();
    let Some(plan) = plan else {
        let row = Row::unbound(0);
        let keep = match &spec.qual {
            Some(q) => eval_pred(q, &row)?,
            None => true,
        };
        return Ok(if keep { vec![row] } else { vec![] });
    };
    let ctx = ExecCtx {
        catalog,
        pnode,
        nvars: spec.vars.len(),
    };
    run_plan(plan, &ctx)
}

/// Execute a resolved DML command against the catalog, planning its
/// qualification first (the paper's *always-reoptimize* path).
///
/// `pnode` supplies bindings for P-node variables (rule-action context).
/// The catalog is mutably borrowed only because `retrieve into` creates its
/// destination relation; all other mutation goes through relation handles.
pub fn execute(
    rcmd: &RCommand,
    catalog: &mut Catalog,
    pnode: Option<&Pnode>,
) -> QueryResult<CmdOutput> {
    let plan = plan_command(rcmd, catalog, pnode)?;
    execute_with_plan(rcmd, plan.as_ref(), catalog, pnode)
}

/// Execute a resolved DML command with a previously-built qualification
/// plan (`None` for variable-free commands) — the replay half of a plan
/// cache.
pub fn execute_with_plan(
    rcmd: &RCommand,
    plan: Option<&Plan>,
    catalog: &mut Catalog,
    pnode: Option<&Pnode>,
) -> QueryResult<CmdOutput> {
    let rows = qualifying_rows(rcmd, plan, catalog, pnode)?;
    let mut out = CmdOutput::default();
    match rcmd {
        RCommand::Append {
            target,
            target_schema,
            assignments,
            ..
        } => {
            // materialize new tuples before inserting (set-oriented)
            let mut new_rows = Vec::with_capacity(rows.len());
            for row in &rows {
                let mut vals = vec![Value::Null; target_schema.arity()];
                for (pos, e) in assignments {
                    vals[*pos] = eval(e, row)?;
                }
                new_rows.push(vals);
            }
            let rel = catalog.require(target)?;
            for vals in new_rows {
                let tid = rel.borrow_mut().insert(vals)?;
                let new = rel.borrow().get(tid).cloned().expect("just inserted");
                out.changes.push(Change::Inserted {
                    rel: target.clone(),
                    tid,
                    new,
                });
            }
        }
        RCommand::Delete { var, spec } => {
            let rel_name = &spec.vars[*var].rel;
            let rel = catalog.require(rel_name)?;
            let mut seen = HashSet::new();
            for row in &rows {
                let b = row.bound(*var).expect("target var bound");
                let Some(tid) = b.tid else { continue };
                if seen.insert(tid) {
                    let old = rel.borrow_mut().delete(tid)?;
                    out.changes.push(Change::Deleted {
                        rel: rel_name.clone(),
                        tid,
                        old,
                    });
                }
            }
        }
        RCommand::Replace {
            var,
            assignments,
            spec,
        } => {
            let rel_name = &spec.vars[*var].rel;
            apply_replace(&rows, *var, assignments, rel_name, catalog, &mut out, false)?;
        }
        RCommand::Retrieve { into, targets, .. } => {
            out.columns = targets.iter().map(|(n, _)| n.clone()).collect();
            for row in &rows {
                let mut vals = Vec::with_capacity(targets.len());
                for (_, e) in targets {
                    vals.push(eval(e, row)?);
                }
                out.rows.push(vals);
            }
            if let Some(dest) = into {
                // create the destination relation from inferred target types
                let spec = rcmd.spec();
                let schema = Schema::new(
                    targets
                        .iter()
                        .map(|(n, e)| {
                            ariel_storage::AttrDef::new(
                                n.clone(),
                                infer_type(e, &spec.vars).unwrap_or(AttrType::Str),
                            )
                        })
                        .collect(),
                )?;
                let rel = catalog.create(dest, std::sync::Arc::new(schema))?;
                for vals in &out.rows {
                    let tid = rel.borrow_mut().insert(vals.clone())?;
                    let new = rel.borrow().get(tid).cloned().expect("just inserted");
                    out.changes.push(Change::Inserted {
                        rel: dest.clone(),
                        tid,
                        new,
                    });
                }
            }
        }
        RCommand::Notify {
            channel, targets, ..
        } => {
            let columns: Vec<String> = targets.iter().map(|(n, _)| n.clone()).collect();
            let mut note_rows = Vec::with_capacity(rows.len());
            for row in &rows {
                let mut vals = Vec::with_capacity(targets.len());
                for (_, e) in targets {
                    vals.push(eval(e, row)?);
                }
                note_rows.push(vals);
            }
            if !note_rows.is_empty() {
                out.notifications.push(Notification {
                    channel: channel.clone(),
                    columns,
                    rows: note_rows,
                });
            }
        }
        RCommand::DeletePrimed { pvar, spec } => {
            let rel_name = &spec.vars[*pvar].rel;
            let rel = catalog.require(rel_name)?;
            let mut seen = HashSet::new();
            for row in &rows {
                let b = row.bound(*pvar).expect("pvar bound");
                // Tuples already gone (bound by ON DELETE, or deleted by an
                // earlier rule in the cascade) are skipped silently.
                let Some(tid) = b.tid else { continue };
                if rel.borrow().get(tid).is_none() {
                    continue;
                }
                if seen.insert(tid) {
                    let old = rel.borrow_mut().delete(tid)?;
                    out.changes.push(Change::Deleted {
                        rel: rel_name.clone(),
                        tid,
                        old,
                    });
                }
            }
        }
        RCommand::ReplacePrimed {
            pvar,
            assignments,
            spec,
        } => {
            let rel_name = &spec.vars[*pvar].rel;
            apply_replace(&rows, *pvar, assignments, rel_name, catalog, &mut out, true)?;
        }
    }
    Ok(out)
}

/// Shared implementation of `replace` and `replace'`.
#[allow(clippy::too_many_arguments)]
fn apply_replace(
    rows: &[Row],
    var: usize,
    assignments: &[(usize, crate::semantic::RExpr)],
    rel_name: &str,
    catalog: &Catalog,
    out: &mut CmdOutput,
    skip_dangling: bool,
) -> QueryResult<()> {
    let rel = catalog.require(rel_name)?;
    // Evaluate all updates first (set-oriented), then apply.
    let mut updates: Vec<(Tid, Vec<Value>)> = Vec::new();
    let mut seen = HashSet::new();
    for row in rows {
        let b = row.bound(var).expect("target var bound");
        let Some(tid) = b.tid else { continue };
        if skip_dangling && rel.borrow().get(tid).is_none() {
            continue;
        }
        if !seen.insert(tid) {
            continue; // first qualifying binding wins
        }
        let mut vals: Vec<Value> = b.tuple.values().to_vec();
        for (pos, e) in assignments {
            vals[*pos] = eval(e, row)?;
        }
        updates.push((tid, vals));
    }
    let attrs: Vec<usize> = assignments.iter().map(|(p, _)| *p).collect();
    for (tid, vals) in updates {
        let old = rel.borrow_mut().update(tid, vals)?;
        let new = rel.borrow().get(tid).cloned().expect("updated tuple");
        out.changes.push(Change::Updated {
            rel: rel_name.to_string(),
            tid,
            old,
            new,
            attrs: attrs.clone(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binding::PnodeCol;
    use crate::parser::parse_command;
    use crate::semantic::Resolver;
    use ariel_storage::{AttrType, IndexKind, Schema};

    fn setup() -> Catalog {
        let mut c = Catalog::new();
        let emp = c
            .create(
                "emp",
                Schema::of(&[
                    ("name", AttrType::Str),
                    ("sal", AttrType::Float),
                    ("dno", AttrType::Int),
                ]),
            )
            .unwrap();
        let dept = c
            .create(
                "dept",
                Schema::of(&[("dno", AttrType::Int), ("name", AttrType::Str)]),
            )
            .unwrap();
        for (n, s, d) in [
            ("alice", 40_000.0, 1),
            ("bob", 55_000.0, 1),
            ("carol", 70_000.0, 2),
            ("dan", 35_000.0, 3),
        ] {
            emp.borrow_mut()
                .insert(vec![n.into(), s.into(), (d as i64).into()])
                .unwrap();
        }
        for (d, n) in [(1, "Sales"), (2, "Toy"), (3, "Shoe")] {
            dept.borrow_mut()
                .insert(vec![(d as i64).into(), n.into()])
                .unwrap();
        }
        c
    }

    fn run(cat: &mut Catalog, sql: &str) -> CmdOutput {
        let cmd = parse_command(sql).unwrap();
        let rc = Resolver::new(cat).resolve_command(&cmd).unwrap();
        execute(&rc, cat, None).unwrap()
    }

    #[test]
    fn retrieve_projects_and_filters() {
        let mut cat = setup();
        let out = run(&mut cat, "retrieve (emp.name) where emp.sal > 50000");
        assert_eq!(out.columns, vec!["col1"]);
        let mut names: Vec<String> = out
            .rows
            .iter()
            .map(|r| r[0].as_str().unwrap().to_string())
            .collect();
        names.sort();
        assert_eq!(names, vec!["bob", "carol"]);
    }

    #[test]
    fn retrieve_join() {
        let mut cat = setup();
        let out = run(
            &mut cat,
            "retrieve (emp.name, dname = dept.name) where emp.dno = dept.dno and dept.name = \"Sales\"",
        );
        assert_eq!(out.rows.len(), 2);
        assert!(out.rows.iter().all(|r| r[1] == Value::from("Sales")));
    }

    #[test]
    fn retrieve_join_with_index() {
        let mut cat = setup();
        cat.get("emp")
            .unwrap()
            .borrow_mut()
            .create_index("dno", IndexKind::Hash)
            .unwrap();
        let out = run(
            &mut cat,
            "retrieve (emp.name) where emp.dno = dept.dno and dept.name = \"Sales\"",
        );
        assert_eq!(out.rows.len(), 2);
    }

    #[test]
    fn append_constant_row() {
        let mut cat = setup();
        let out = run(
            &mut cat,
            r#"append emp (name = "eve", sal = 10000, dno = 2)"#,
        );
        assert_eq!(out.changes.len(), 1);
        assert!(matches!(&out.changes[0], Change::Inserted { rel, .. } if rel == "emp"));
        assert_eq!(cat.get("emp").unwrap().borrow().len(), 5);
    }

    #[test]
    fn append_from_query() {
        let mut cat = setup();
        // copy Sales employees' names into a watch relation
        cat.create("watch", Schema::of(&[("who", AttrType::Str)]))
            .unwrap();
        let out = run(
            &mut cat,
            "append watch (who = emp.name) where emp.dno = dept.dno and dept.name = \"Sales\"",
        );
        assert_eq!(out.changes.len(), 2);
        assert_eq!(cat.get("watch").unwrap().borrow().len(), 2);
    }

    #[test]
    fn append_missing_attrs_null() {
        let mut cat = setup();
        run(&mut cat, r#"append emp (name = "ghost")"#);
        let emp = cat.get("emp").unwrap();
        let emp = emp.borrow();
        let ghost = emp
            .scan()
            .find(|(_, t)| t.get(0) == &Value::from("ghost"))
            .unwrap();
        assert!(ghost.1.get(1).is_null());
    }

    #[test]
    fn delete_with_qual() {
        let mut cat = setup();
        let out = run(&mut cat, "delete emp where emp.sal < 45000");
        assert_eq!(out.changes.len(), 2); // alice, dan
        assert_eq!(cat.get("emp").unwrap().borrow().len(), 2);
    }

    #[test]
    fn delete_join_dedupes_targets() {
        let mut cat = setup();
        // extra dept row with duplicate dno would double-match
        cat.get("dept")
            .unwrap()
            .borrow_mut()
            .insert(vec![1i64.into(), "SalesBis".into()])
            .unwrap();
        let out = run(
            &mut cat,
            "delete emp where emp.dno = dept.dno and emp.dno = 1",
        );
        assert_eq!(out.changes.len(), 2); // alice+bob deleted once each
    }

    #[test]
    fn replace_updates_and_reports_attrs() {
        let mut cat = setup();
        let out = run(
            &mut cat,
            "replace emp (sal = 60000) where emp.name = \"alice\"",
        );
        assert_eq!(out.changes.len(), 1);
        let Change::Updated {
            old, new, attrs, ..
        } = &out.changes[0]
        else {
            panic!()
        };
        assert_eq!(old.get(1), &Value::Float(40_000.0));
        assert_eq!(new.get(1), &Value::Float(60_000.0));
        assert_eq!(attrs, &vec![1]);
    }

    #[test]
    fn replace_sees_pre_update_state() {
        let mut cat = setup();
        // raise everyone by 10% — each update computed from the old value,
        // not from other rows' updates
        let out = run(
            &mut cat,
            "replace emp (sal = emp.sal * 1.1) where emp.sal > 0",
        );
        assert_eq!(out.changes.len(), 4);
        let emp = cat.get("emp").unwrap();
        let total: f64 = emp
            .borrow()
            .scan()
            .map(|(_, t)| t.get(1).as_f64().unwrap())
            .sum();
        assert!((total - 220_000.0).abs() < 1.0);
    }

    #[test]
    fn retrieve_into_creates_relation() {
        let mut cat = setup();
        let out = run(
            &mut cat,
            "retrieve into rich (who = emp.name, pay = emp.sal) where emp.sal > 50000",
        );
        assert_eq!(out.changes.len(), 2);
        let rich = cat.get("rich").unwrap();
        assert_eq!(rich.borrow().len(), 2);
        assert_eq!(rich.borrow().schema().attr(1).ty, AttrType::Float);
    }

    #[test]
    fn retrieve_into_existing_errors() {
        let mut cat = setup();
        let cmd = parse_command("retrieve into dept (emp.name)").unwrap();
        let rc = Resolver::new(&cat).resolve_command(&cmd).unwrap();
        assert!(execute(&rc, &mut cat, None).is_err());
    }

    #[test]
    fn primed_replace_through_pnode() {
        let mut cat = setup();
        let emp_rel = cat.get("emp").unwrap();
        let emp_schema = emp_rel.borrow().schema().clone();
        // P-node binding bob (tid from scan)
        let (bob_tid, bob_tuple) = {
            let r = emp_rel.borrow();
            let (t, tu) = r
                .scan()
                .find(|(_, t)| t.get(0) == &Value::from("bob"))
                .unwrap();
            (t, tu.clone())
        };
        let mut pnode = Pnode::new(vec![PnodeCol {
            var: "emp".into(),
            rel: "emp".into(),
            schema: emp_schema,
            has_prev: false,
        }]);
        pnode.push(vec![BoundVar::plain(bob_tid, bob_tuple)]);
        let cmd = crate::ast::Command::ReplacePrimed {
            pvar: "emp".into(),
            assignments: vec![(
                "sal".into(),
                crate::ast::Expr::Literal(crate::ast::Literal::Int(30000)),
            )],
            from: vec![],
            qual: None,
        };
        let rc = Resolver::with_pnode(&cat, &pnode)
            .resolve_command(&cmd)
            .unwrap();
        let out = execute(&rc, &mut cat, Some(&pnode)).unwrap();
        assert_eq!(out.changes.len(), 1);
        assert_eq!(
            emp_rel.borrow().get(bob_tid).unwrap().get(1),
            &Value::Float(30000.0)
        );
    }

    #[test]
    fn primed_delete_skips_dangling() {
        let mut cat = setup();
        let emp_rel = cat.get("emp").unwrap();
        let emp_schema = emp_rel.borrow().schema().clone();
        let (tid, tuple) = {
            let r = emp_rel.borrow();
            let (t, tu) = r.scan().next().unwrap();
            (t, tu.clone())
        };
        let mut pnode = Pnode::new(vec![PnodeCol {
            var: "emp".into(),
            rel: "emp".into(),
            schema: emp_schema,
            has_prev: false,
        }]);
        pnode.push(vec![BoundVar::plain(tid, tuple)]);
        // delete underneath the P-node
        emp_rel.borrow_mut().delete(tid).unwrap();
        let cmd = crate::ast::Command::DeletePrimed {
            pvar: "emp".into(),
            from: vec![],
            qual: None,
        };
        let rc = Resolver::with_pnode(&cat, &pnode)
            .resolve_command(&cmd)
            .unwrap();
        let out = execute(&rc, &mut cat, Some(&pnode)).unwrap();
        assert!(out.changes.is_empty());
    }

    #[test]
    fn sort_merge_join_correctness() {
        let mut cat = Catalog::new();
        for name in ["a", "b"] {
            let r = cat
                .create(name, Schema::of(&[("k", AttrType::Int)]))
                .unwrap();
            for i in 0..200 {
                r.borrow_mut()
                    .insert(vec![((i % 50) as i64).into()])
                    .unwrap();
            }
        }
        let out = run(&mut cat, "retrieve (a.k) where a.k = b.k");
        // 50 keys, 4 copies each side → 50 * 16
        assert_eq!(out.rows.len(), 800);
    }
}
