//! Physical query plans.
//!
//! The shapes follow the paper's executor: `SeqScan`, `IndexScan`, the
//! special `PnodeScan` operator for rule-action commands (§5.2, Fig. 8),
//! `NestedLoopJoin` (with an index-probing variant) and `SortMergeJoin`.

use crate::semantic::RExpr;
use ariel_storage::Value;
use std::fmt;
use std::ops::Bound;

/// How an index scan probes its index.
#[derive(Debug, Clone, PartialEq)]
pub enum IndexKey {
    /// Equality probe with a plan-time constant.
    Eq(Value),
    /// Range probe (B-tree only).
    Range(Bound<Value>, Bound<Value>),
}

/// A physical plan node. Executing a plan yields [`crate::binding::Row`]s
/// with the node's variable slots bound.
#[derive(Debug, Clone)]
pub enum Plan {
    /// Scan every live tuple of a relation, binding `var`.
    SeqScan {
        /// Relation to scan.
        rel: String,
        /// Variable slot to bind.
        var: usize,
        /// Residual predicate applied per tuple.
        filter: Option<RExpr>,
    },
    /// Probe an index on `rel.attr`, binding `var`.
    IndexScan {
        /// Relation to probe.
        rel: String,
        /// Variable slot to bind.
        var: usize,
        /// Indexed attribute position.
        attr: usize,
        /// Probe key (point or range).
        key: IndexKey,
        /// Residual predicate applied per hit.
        filter: Option<RExpr>,
    },
    /// Scan the rule's P-node, binding every listed `(var, pnode column)`
    /// pair at once (§5.2: "the optimizer always generates a PnodeScan to
    /// find tuples to be bound to P").
    PnodeScan {
        /// (variable slot, P-node column) pairs bound per row.
        binds: Vec<(usize, usize)>,
        /// Residual predicate applied per row.
        filter: Option<RExpr>,
    },
    /// Nested-loop join; `cond` is evaluated over the merged row.
    NestedLoop {
        /// Outer input.
        left: Box<Plan>,
        /// Inner input (materialized once).
        right: Box<Plan>,
        /// Join condition over the merged row.
        cond: Option<RExpr>,
    },
    /// Index nested-loop join: for each left row, probe `rel`'s index on
    /// `attr` with the value of `key_expr` (evaluated over the left row),
    /// binding `var`; then apply `filter` (single-var) and `cond` (cross).
    IndexedLoop {
        /// Outer input.
        left: Box<Plan>,
        /// Probed relation.
        rel: String,
        /// Variable slot bound by each probe hit.
        var: usize,
        /// Indexed attribute position.
        attr: usize,
        /// Probe-key expression over the outer row.
        key_expr: RExpr,
        /// Single-variable predicate on the probed tuple.
        filter: Option<RExpr>,
        /// Remaining join condition over the merged row.
        cond: Option<RExpr>,
    },
    /// Sort-merge equi-join on `left_key = right_key`.
    SortMergeJoin {
        /// Left input.
        left: Box<Plan>,
        /// Right input.
        right: Box<Plan>,
        /// Left join-key expression.
        left_key: RExpr,
        /// Right join-key expression.
        right_key: RExpr,
        /// Residual predicate over the merged row.
        residual: Option<RExpr>,
    },
    /// Row filter.
    Filter {
        /// Input plan.
        input: Box<Plan>,
        /// Predicate rows must satisfy.
        pred: RExpr,
    },
}

impl Plan {
    /// Estimated output cardinality recorded by the optimizer (used in
    /// tests and EXPLAIN output); plans carry no estimate themselves, so
    /// this walks the tree for a human-readable summary instead.
    pub fn node_name(&self) -> &'static str {
        match self {
            Plan::SeqScan { .. } => "SeqScan",
            Plan::IndexScan { .. } => "IndexScan",
            Plan::PnodeScan { .. } => "PnodeScan",
            Plan::NestedLoop { .. } => "NestedLoopJoin",
            Plan::IndexedLoop { .. } => "IndexedLoopJoin",
            Plan::SortMergeJoin { .. } => "SortMergeJoin",
            Plan::Filter { .. } => "Filter",
        }
    }

    /// All node names in pre-order, for plan-shape assertions in tests.
    pub fn shape(&self) -> Vec<&'static str> {
        let mut out = vec![self.node_name()];
        match self {
            Plan::NestedLoop { left, right, .. } | Plan::SortMergeJoin { left, right, .. } => {
                out.extend(left.shape());
                out.extend(right.shape());
            }
            Plan::IndexedLoop { left, .. } => out.extend(left.shape()),
            Plan::Filter { input, .. } => out.extend(input.shape()),
            _ => {}
        }
        out
    }

    fn fmt_indent(&self, f: &mut fmt::Formatter<'_>, depth: usize) -> fmt::Result {
        let pad = "  ".repeat(depth);
        match self {
            Plan::SeqScan { rel, var, filter } => {
                write!(f, "{pad}SeqScan {rel} (var {var})")?;
                if filter.is_some() {
                    write!(f, " [filtered]")?;
                }
                writeln!(f)
            }
            Plan::IndexScan {
                rel,
                var,
                attr,
                key,
                filter,
            } => {
                let k = match key {
                    IndexKey::Eq(v) => format!("= {v}"),
                    IndexKey::Range(..) => "range".to_string(),
                };
                write!(f, "{pad}IndexScan {rel}.#{attr} {k} (var {var})")?;
                if filter.is_some() {
                    write!(f, " [filtered]")?;
                }
                writeln!(f)
            }
            Plan::PnodeScan { binds, filter } => {
                write!(f, "{pad}PnodeScan vars {:?}", binds)?;
                if filter.is_some() {
                    write!(f, " [filtered]")?;
                }
                writeln!(f)
            }
            Plan::NestedLoop { left, right, .. } => {
                writeln!(f, "{pad}NestedLoopJoin")?;
                left.fmt_indent(f, depth + 1)?;
                right.fmt_indent(f, depth + 1)
            }
            Plan::IndexedLoop {
                left,
                rel,
                attr,
                var,
                ..
            } => {
                writeln!(f, "{pad}IndexedLoopJoin probe {rel}.#{attr} (var {var})")?;
                left.fmt_indent(f, depth + 1)
            }
            Plan::SortMergeJoin { left, right, .. } => {
                writeln!(f, "{pad}SortMergeJoin")?;
                left.fmt_indent(f, depth + 1)?;
                right.fmt_indent(f, depth + 1)
            }
            Plan::Filter { input, .. } => {
                writeln!(f, "{pad}Filter")?;
                input.fmt_indent(f, depth + 1)
            }
        }
    }
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_indent(f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_walks_tree() {
        let p = Plan::NestedLoop {
            left: Box::new(Plan::PnodeScan {
                binds: vec![(0, 0)],
                filter: None,
            }),
            right: Box::new(Plan::SeqScan {
                rel: "dept".into(),
                var: 1,
                filter: None,
            }),
            cond: None,
        };
        assert_eq!(p.shape(), vec!["NestedLoopJoin", "PnodeScan", "SeqScan"]);
        let text = p.to_string();
        assert!(text.contains("NestedLoopJoin"));
        assert!(text.contains("SeqScan dept"));
    }
}
