//! Error types for the query layer.

use ariel_storage::StorageError;
use std::fmt;

/// Errors raised while lexing, parsing, analyzing, planning or executing
/// POSTQUEL/ARL commands.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// Lexical error at a byte offset.
    Lex {
        /// Byte offset of the error.
        pos: usize,
        /// What went wrong.
        msg: String,
    },
    /// Syntax error.
    Parse {
        /// Byte offset of the error.
        pos: usize,
        /// What went wrong.
        msg: String,
    },
    /// Semantic (name/type resolution) error.
    Semantic(String),
    /// Planner could not produce a plan.
    Plan(String),
    /// Runtime evaluation error.
    Eval(String),
    /// Underlying storage error.
    Storage(StorageError),
}

/// Result alias for query operations.
pub type QueryResult<T> = Result<T, QueryError>;

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Lex { pos, msg } => write!(f, "lex error at {pos}: {msg}"),
            QueryError::Parse { pos, msg } => write!(f, "parse error at {pos}: {msg}"),
            QueryError::Semantic(m) => write!(f, "semantic error: {m}"),
            QueryError::Plan(m) => write!(f, "planning error: {m}"),
            QueryError::Eval(m) => write!(f, "evaluation error: {m}"),
            QueryError::Storage(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<StorageError> for QueryError {
    fn from(e: StorageError) -> Self {
        QueryError::Storage(e)
    }
}
