//! Recursive-descent parser for the POSTQUEL subset + ARL.
//!
//! Keywords are matched case-insensitively and contextually; any word can
//! still serve as a relation / attribute / rule name where the grammar
//! expects one.

use crate::ast::*;
use crate::error::{QueryError, QueryResult};
use crate::lexer::{lex, Token, TokenKind};
use ariel_storage::{AttrType, IndexKind};

/// Parse a script: one or more commands, optionally `;`-separated.
///
/// ```
/// use ariel_query::parse_script;
///
/// let cmds = parse_script(
///     "create emp (name = string, sal = float); \
///      define rule cap if emp.sal > 100 then replace emp (sal = 100)",
/// )
/// .unwrap();
/// assert_eq!(cmds.len(), 2);
/// ```
pub fn parse_script(src: &str) -> QueryResult<Vec<Command>> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, at: 0 };
    let mut cmds = Vec::new();
    loop {
        p.skip_semicolons();
        if p.peek_is_eof() {
            break;
        }
        cmds.push(p.parse_command()?);
    }
    Ok(cmds)
}

/// Parse exactly one command.
pub fn parse_command(src: &str) -> QueryResult<Command> {
    let mut cmds = parse_script(src)?;
    match cmds.len() {
        1 => Ok(cmds.pop().unwrap()),
        0 => Err(QueryError::Parse {
            pos: 0,
            msg: "empty input".into(),
        }),
        _ => Err(QueryError::Parse {
            pos: 0,
            msg: "expected a single command".into(),
        }),
    }
}

/// Parse a qualification expression in isolation (used by tests and by the
/// rule catalog when reconstructing conditions).
pub fn parse_expr(src: &str) -> QueryResult<Expr> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, at: 0 };
    let e = p.parse_or()?;
    p.expect_eof()?;
    Ok(e)
}

struct Parser {
    tokens: Vec<Token>,
    at: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.at]
    }

    fn peek_is_eof(&self) -> bool {
        matches!(self.peek().kind, TokenKind::Eof)
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.at].clone();
        if self.at + 1 < self.tokens.len() {
            self.at += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> QueryResult<T> {
        Err(QueryError::Parse {
            pos: self.peek().pos,
            msg: msg.into(),
        })
    }

    fn skip_semicolons(&mut self) {
        while matches!(self.peek().kind, TokenKind::Semicolon) {
            self.bump();
        }
    }

    fn expect_eof(&self) -> QueryResult<()> {
        if self.peek_is_eof() {
            Ok(())
        } else {
            Err(QueryError::Parse {
                pos: self.peek().pos,
                msg: format!("unexpected trailing input {}", self.peek().kind),
            })
        }
    }

    /// Is the current token the given (case-insensitive) keyword?
    fn at_kw(&self, kw: &str) -> bool {
        matches!(&self.peek().kind, TokenKind::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    /// Consume the given keyword if present.
    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> QueryResult<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            self.err(format!("expected `{kw}`, found {}", self.peek().kind))
        }
    }

    fn expect_tok(&mut self, kind: TokenKind) -> QueryResult<()> {
        if self.peek().kind == kind {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected {kind}, found {}", self.peek().kind))
        }
    }

    fn eat_tok(&mut self, kind: TokenKind) -> bool {
        if self.peek().kind == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> QueryResult<String> {
        match &self.peek().kind {
            TokenKind::Ident(s) => {
                let s = s.clone();
                self.bump();
                Ok(s)
            }
            other => self.err(format!("expected identifier, found {other}")),
        }
    }

    // ----- commands ---------------------------------------------------------

    fn parse_command(&mut self) -> QueryResult<Command> {
        if self.at_kw("create") {
            return self.parse_create();
        }
        if self.at_kw("destroy") {
            return self.parse_destroy();
        }
        if self.at_kw("define") {
            return self.parse_define();
        }
        if self.at_kw("activate") {
            self.bump();
            self.expect_kw("rule")?;
            let name = self.expect_ident()?;
            return Ok(Command::ActivateRule { name });
        }
        if self.at_kw("deactivate") {
            self.bump();
            self.expect_kw("rule")?;
            let name = self.expect_ident()?;
            return Ok(Command::DeactivateRule { name });
        }
        if self.at_kw("append") {
            return self.parse_append();
        }
        if self.at_kw("delete") {
            return self.parse_delete();
        }
        if self.at_kw("replace") {
            return self.parse_replace();
        }
        if self.at_kw("retrieve") {
            return self.parse_retrieve();
        }
        if self.at_kw("do") {
            return self.parse_block();
        }
        if self.at_kw("halt") {
            self.bump();
            return Ok(Command::Halt);
        }
        if self.at_kw("notify") {
            return self.parse_notify();
        }
        self.err(format!("expected a command, found {}", self.peek().kind))
    }

    fn parse_create(&mut self) -> QueryResult<Command> {
        self.expect_kw("create")?;
        let name = self.expect_ident()?;
        self.expect_tok(TokenKind::LParen)?;
        let mut attrs = Vec::new();
        loop {
            let attr = self.expect_ident()?;
            self.expect_tok(TokenKind::Eq)?;
            let ty_name = self.expect_ident()?;
            let ty = match ty_name.to_ascii_lowercase().as_str() {
                "int" | "i4" | "integer" => AttrType::Int,
                "float" | "f8" | "float8" | "real" => AttrType::Float,
                "string" | "str" | "text" | "char" | "c" => AttrType::Str,
                "bool" | "boolean" => AttrType::Bool,
                other => return self.err(format!("unknown type `{other}`")),
            };
            attrs.push((attr, ty));
            if !self.eat_tok(TokenKind::Comma) {
                break;
            }
        }
        self.expect_tok(TokenKind::RParen)?;
        Ok(Command::CreateRelation { name, attrs })
    }

    fn parse_destroy(&mut self) -> QueryResult<Command> {
        self.expect_kw("destroy")?;
        if self.eat_kw("rule") {
            let name = self.expect_ident()?;
            return Ok(Command::DropRule { name });
        }
        let name = self.expect_ident()?;
        Ok(Command::DestroyRelation { name })
    }

    fn parse_define(&mut self) -> QueryResult<Command> {
        self.expect_kw("define")?;
        if self.eat_kw("index") {
            self.expect_kw("on")?;
            let rel = self.expect_ident()?;
            self.expect_tok(TokenKind::LParen)?;
            let attr = self.expect_ident()?;
            self.expect_tok(TokenKind::RParen)?;
            let kind = if self.eat_kw("using") {
                let k = self.expect_ident()?;
                match k.to_ascii_lowercase().as_str() {
                    "btree" => IndexKind::BTree,
                    "hash" => IndexKind::Hash,
                    other => return self.err(format!("unknown index kind `{other}`")),
                }
            } else {
                IndexKind::BTree
            };
            return Ok(Command::CreateIndex { rel, attr, kind });
        }
        self.expect_kw("rule")?;
        let rule = self.parse_rule_def()?;
        Ok(Command::DefineRule(rule))
    }

    fn parse_rule_def(&mut self) -> QueryResult<RuleDef> {
        let name = self.expect_ident()?;
        let ruleset = if self.eat_kw("in") {
            Some(self.expect_ident()?)
        } else {
            None
        };
        let priority = if self.eat_kw("priority") {
            let neg = self.eat_tok(TokenKind::Minus);
            let v = match self.bump().kind {
                TokenKind::Int(i) => i as f64,
                TokenKind::Float(x) => x,
                other => return self.err(format!("expected priority value, found {other}")),
            };
            Some(if neg { -v } else { v })
        } else {
            None
        };
        let on = if self.eat_kw("on") {
            Some(self.parse_event_spec()?)
        } else {
            None
        };
        let (condition, cond_from) = if self.eat_kw("if") {
            let e = self.parse_or()?;
            let from = if self.eat_kw("from") {
                self.parse_from_items()?
            } else {
                Vec::new()
            };
            (Some(e), from)
        } else {
            (None, Vec::new())
        };
        self.expect_kw("then")?;
        let action = match self.parse_command()? {
            Command::Block(cmds) => cmds,
            single => vec![single],
        };
        if on.is_none() && condition.is_none() {
            return self.err("rule needs an `on` event or an `if` condition");
        }
        Ok(RuleDef {
            name,
            ruleset,
            priority,
            on,
            condition,
            cond_from,
            action,
        })
    }

    fn parse_event_spec(&mut self) -> QueryResult<EventSpec> {
        if self.eat_kw("append") {
            self.eat_kw("to");
            let relation = self.expect_ident()?;
            return Ok(EventSpec {
                kind: EventKind::Append,
                relation,
            });
        }
        if self.eat_kw("delete") {
            self.eat_kw("from");
            let relation = self.expect_ident()?;
            return Ok(EventSpec {
                kind: EventKind::Delete,
                relation,
            });
        }
        if self.eat_kw("replace") {
            self.eat_kw("to");
            let relation = self.expect_ident()?;
            let attrs = if self.eat_tok(TokenKind::LParen) {
                let mut list = vec![self.expect_ident()?];
                while self.eat_tok(TokenKind::Comma) {
                    list.push(self.expect_ident()?);
                }
                self.expect_tok(TokenKind::RParen)?;
                Some(list)
            } else {
                None
            };
            return Ok(EventSpec {
                kind: EventKind::Replace(attrs),
                relation,
            });
        }
        self.err("expected `append`, `delete` or `replace` after `on`")
    }

    fn parse_assignments(&mut self) -> QueryResult<Vec<(String, Expr)>> {
        self.expect_tok(TokenKind::LParen)?;
        let mut out = Vec::new();
        loop {
            let attr = self.expect_ident()?;
            self.expect_tok(TokenKind::Eq)?;
            let expr = self.parse_or()?;
            out.push((attr, expr));
            if !self.eat_tok(TokenKind::Comma) {
                break;
            }
        }
        self.expect_tok(TokenKind::RParen)?;
        Ok(out)
    }

    fn parse_from_items(&mut self) -> QueryResult<Vec<FromItem>> {
        let mut out = Vec::new();
        loop {
            let var = self.expect_ident()?;
            self.expect_kw("in")?;
            let rel = self.expect_ident()?;
            out.push(FromItem { var, rel });
            if !self.eat_tok(TokenKind::Comma) {
                break;
            }
        }
        Ok(out)
    }

    /// Optional `from …` then optional `where …`, in either order? The
    /// paper's syntax is `[from from-list] [where qual]`, with `where`
    /// allowed first in practice; we accept both orders.
    fn parse_from_where(&mut self) -> QueryResult<(Vec<FromItem>, Option<Expr>)> {
        let mut from = Vec::new();
        let mut qual = None;
        loop {
            if self.eat_kw("from") {
                from.extend(self.parse_from_items()?);
            } else if self.eat_kw("where") {
                let e = self.parse_or()?;
                qual = Expr::and(qual, Some(e));
            } else {
                break;
            }
        }
        Ok((from, qual))
    }

    fn parse_append(&mut self) -> QueryResult<Command> {
        self.expect_kw("append")?;
        self.eat_kw("to");
        let target = self.expect_ident()?;
        let assignments = self.parse_assignments()?;
        let (from, qual) = self.parse_from_where()?;
        Ok(Command::Append {
            target,
            assignments,
            from,
            qual,
        })
    }

    fn parse_delete(&mut self) -> QueryResult<Command> {
        self.expect_kw("delete")?;
        let var = self.expect_ident()?;
        let (from, qual) = self.parse_from_where()?;
        Ok(Command::Delete { var, from, qual })
    }

    fn parse_replace(&mut self) -> QueryResult<Command> {
        self.expect_kw("replace")?;
        let var = self.expect_ident()?;
        let assignments = self.parse_assignments()?;
        let (from, qual) = self.parse_from_where()?;
        Ok(Command::Replace {
            var,
            assignments,
            from,
            qual,
        })
    }

    fn parse_retrieve(&mut self) -> QueryResult<Command> {
        self.expect_kw("retrieve")?;
        let into = if self.eat_kw("into") {
            Some(self.expect_ident()?)
        } else {
            None
        };
        self.expect_tok(TokenKind::LParen)?;
        let mut targets = Vec::new();
        let mut anon = 0usize;
        loop {
            // `var.all`
            let target = if let TokenKind::Ident(first) = self.peek().kind.clone() {
                if matches!(
                    self.tokens.get(self.at + 1).map(|t| &t.kind),
                    Some(TokenKind::Dot)
                ) && matches!(
                    self.tokens.get(self.at + 2).map(|t| &t.kind),
                    Some(TokenKind::Ident(a)) if a.eq_ignore_ascii_case("all")
                ) {
                    self.bump();
                    self.bump();
                    self.bump();
                    Target::All { var: first }
                } else if matches!(
                    self.tokens.get(self.at + 1).map(|t| &t.kind),
                    Some(TokenKind::Eq)
                ) {
                    // `name = expr`
                    self.bump();
                    self.bump();
                    let expr = self.parse_or()?;
                    Target::Expr { name: first, expr }
                } else {
                    let expr = self.parse_or()?;
                    anon += 1;
                    Target::Expr {
                        name: format!("col{anon}"),
                        expr,
                    }
                }
            } else {
                let expr = self.parse_or()?;
                anon += 1;
                Target::Expr {
                    name: format!("col{anon}"),
                    expr,
                }
            };
            targets.push(target);
            if !self.eat_tok(TokenKind::Comma) {
                break;
            }
        }
        self.expect_tok(TokenKind::RParen)?;
        let (from, qual) = self.parse_from_where()?;
        Ok(Command::Retrieve {
            into,
            targets,
            from,
            qual,
        })
    }

    fn parse_notify(&mut self) -> QueryResult<Command> {
        self.expect_kw("notify")?;
        let channel = self.expect_ident()?;
        self.expect_tok(TokenKind::LParen)?;
        let mut targets = Vec::new();
        let mut anon = 0usize;
        loop {
            let target = if let TokenKind::Ident(first) = self.peek().kind.clone() {
                if matches!(
                    self.tokens.get(self.at + 1).map(|t| &t.kind),
                    Some(TokenKind::Dot)
                ) && matches!(
                    self.tokens.get(self.at + 2).map(|t| &t.kind),
                    Some(TokenKind::Ident(a)) if a.eq_ignore_ascii_case("all")
                ) {
                    self.bump();
                    self.bump();
                    self.bump();
                    Target::All { var: first }
                } else if matches!(
                    self.tokens.get(self.at + 1).map(|t| &t.kind),
                    Some(TokenKind::Eq)
                ) {
                    self.bump();
                    self.bump();
                    let expr = self.parse_or()?;
                    Target::Expr { name: first, expr }
                } else {
                    let expr = self.parse_or()?;
                    anon += 1;
                    Target::Expr {
                        name: format!("col{anon}"),
                        expr,
                    }
                }
            } else {
                let expr = self.parse_or()?;
                anon += 1;
                Target::Expr {
                    name: format!("col{anon}"),
                    expr,
                }
            };
            targets.push(target);
            if !self.eat_tok(TokenKind::Comma) {
                break;
            }
        }
        self.expect_tok(TokenKind::RParen)?;
        let (from, qual) = self.parse_from_where()?;
        Ok(Command::Notify {
            channel,
            targets,
            from,
            qual,
        })
    }

    fn parse_block(&mut self) -> QueryResult<Command> {
        self.expect_kw("do")?;
        let mut cmds = Vec::new();
        loop {
            self.skip_semicolons();
            if self.eat_kw("end") {
                break;
            }
            if self.peek_is_eof() {
                return self.err("unterminated `do … end` block");
            }
            let cmd = self.parse_command()?;
            if matches!(cmd, Command::Block(_)) {
                return self.err("blocks may not be nested (§2.2.1)");
            }
            cmds.push(cmd);
        }
        Ok(Command::Block(cmds))
    }

    // ----- expressions -------------------------------------------------------

    fn parse_or(&mut self) -> QueryResult<Expr> {
        let mut left = self.parse_and()?;
        while self.eat_kw("or") {
            let right = self.parse_and()?;
            left = Expr::Binary {
                op: BinOp::Or,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> QueryResult<Expr> {
        let mut left = self.parse_not()?;
        while self.eat_kw("and") {
            let right = self.parse_not()?;
            left = Expr::Binary {
                op: BinOp::And,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> QueryResult<Expr> {
        if self.eat_kw("not") {
            let inner = self.parse_not()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(inner),
            });
        }
        self.parse_cmp()
    }

    fn parse_cmp(&mut self) -> QueryResult<Expr> {
        let left = self.parse_add()?;
        let op = match self.peek().kind {
            TokenKind::Eq => BinOp::Eq,
            TokenKind::Ne => BinOp::Ne,
            TokenKind::Lt => BinOp::Lt,
            TokenKind::Le => BinOp::Le,
            TokenKind::Gt => BinOp::Gt,
            TokenKind::Ge => BinOp::Ge,
            _ => return Ok(left),
        };
        self.bump();
        let right = self.parse_add()?;
        Ok(Expr::Binary {
            op,
            left: Box::new(left),
            right: Box::new(right),
        })
    }

    fn parse_add(&mut self) -> QueryResult<Expr> {
        let mut left = self.parse_mul()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let right = self.parse_mul()?;
            left = Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_mul(&mut self) -> QueryResult<Expr> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::StarTok => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                _ => break,
            };
            self.bump();
            let right = self.parse_unary()?;
            left = Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> QueryResult<Expr> {
        if self.eat_tok(TokenKind::Minus) {
            let inner = self.parse_unary()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Neg,
                expr: Box::new(inner),
            });
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> QueryResult<Expr> {
        match self.peek().kind.clone() {
            TokenKind::Int(i) => {
                self.bump();
                Ok(Expr::Literal(Literal::Int(i)))
            }
            TokenKind::Float(x) => {
                self.bump();
                Ok(Expr::Literal(Literal::Float(x)))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Expr::Literal(Literal::Str(s)))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.parse_or()?;
                self.expect_tok(TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(word) => {
                let lower = word.to_ascii_lowercase();
                if lower == "true" || lower == "false" {
                    self.bump();
                    return Ok(Expr::Literal(Literal::Bool(lower == "true")));
                }
                if lower == "previous" {
                    self.bump();
                    let var = self.expect_ident()?;
                    self.expect_tok(TokenKind::Dot)?;
                    let attr = self.expect_ident()?;
                    return Ok(Expr::Attr {
                        var,
                        attr,
                        previous: true,
                    });
                }
                if lower == "new"
                    && matches!(
                        self.tokens.get(self.at + 1).map(|t| &t.kind),
                        Some(TokenKind::LParen)
                    )
                {
                    self.bump();
                    self.bump();
                    let var = self.expect_ident()?;
                    self.expect_tok(TokenKind::RParen)?;
                    return Ok(Expr::New { var });
                }
                // var.attr
                self.bump();
                self.expect_tok(TokenKind::Dot)?;
                let attr = self.expect_ident()?;
                Ok(Expr::Attr {
                    var: word,
                    attr,
                    previous: false,
                })
            }
            other => self.err(format!("expected an expression, found {other}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_create_relation() {
        let c = parse_command("create emp (name = string, age = int, salary = float)").unwrap();
        match c {
            Command::CreateRelation { name, attrs } => {
                assert_eq!(name, "emp");
                assert_eq!(attrs.len(), 3);
                assert_eq!(attrs[1], ("age".to_string(), AttrType::Int));
            }
            other => panic!("wrong command: {other:?}"),
        }
    }

    #[test]
    fn parse_append_with_constants() {
        let c = parse_command(r#"append emp(name="Sue", age=27, sal=55000, dno=12)"#).unwrap();
        match c {
            Command::Append {
                target,
                assignments,
                ..
            } => {
                assert_eq!(target, "emp");
                assert_eq!(assignments.len(), 4);
            }
            other => panic!("wrong command: {other:?}"),
        }
    }

    #[test]
    fn parse_replace_with_where() {
        let c = parse_command(r#"replace emp (name="bob") where emp.name = "Sue""#).unwrap();
        match c {
            Command::Replace {
                var,
                assignments,
                qual,
                ..
            } => {
                assert_eq!(var, "emp");
                assert_eq!(assignments.len(), 1);
                assert!(qual.is_some());
            }
            other => panic!("wrong command: {other:?}"),
        }
    }

    #[test]
    fn parse_retrieve_targets() {
        let c = parse_command(
            "retrieve into result (emp.all, total = emp.sal + 10) from emp in employees where emp.sal > 100",
        )
        .unwrap();
        match c {
            Command::Retrieve {
                into,
                targets,
                from,
                qual,
            } => {
                assert_eq!(into.as_deref(), Some("result"));
                assert_eq!(targets.len(), 2);
                assert!(matches!(&targets[0], Target::All { var } if var == "emp"));
                assert!(matches!(&targets[1], Target::Expr { name, .. } if name == "total"));
                assert_eq!(
                    from,
                    vec![FromItem {
                        var: "emp".into(),
                        rel: "employees".into()
                    }]
                );
                assert!(qual.is_some());
            }
            other => panic!("wrong command: {other:?}"),
        }
    }

    #[test]
    fn parse_do_block() {
        let c = parse_command(
            r#"do append emp(name="a") replace emp (name="b") where emp.name = "a" end"#,
        )
        .unwrap();
        match c {
            Command::Block(cmds) => assert_eq!(cmds.len(), 2),
            other => panic!("wrong command: {other:?}"),
        }
    }

    #[test]
    fn nested_blocks_rejected() {
        let r = parse_command("do do halt end end");
        assert!(matches!(r, Err(QueryError::Parse { .. })));
    }

    #[test]
    fn parse_rule_nobobs() {
        let c = parse_command(
            r#"define rule NoBobs on append emp if emp.name = "Bob" then delete emp"#,
        )
        .unwrap();
        match c {
            Command::DefineRule(r) => {
                assert_eq!(r.name, "NoBobs");
                assert_eq!(
                    r.on,
                    Some(EventSpec {
                        kind: EventKind::Append,
                        relation: "emp".into()
                    })
                );
                assert!(r.condition.is_some());
                assert_eq!(r.action.len(), 1);
            }
            other => panic!("wrong command: {other:?}"),
        }
    }

    #[test]
    fn parse_rule_raiselimit_with_previous() {
        let c = parse_command(
            "define rule raiselimit if emp.sal > 1.1 * previous emp.sal \
             then append to salaryerror(name=emp.name, old=previous emp.sal, new=emp.sal)",
        )
        .unwrap();
        match c {
            Command::DefineRule(r) => {
                assert!(r.condition.unwrap().has_previous_ref("emp"));
            }
            other => panic!("wrong command: {other:?}"),
        }
    }

    #[test]
    fn parse_rule_finddemotions_full() {
        let c = parse_command(
            "define rule finddemotions on replace emp(jno) \
             if newjob.jno = emp.jno and oldjob.jno = previous emp.jno and newjob.paygrade < oldjob.paygrade \
             from oldjob in job, newjob in job \
             then append to demotions (name=emp.name, dno=emp.dno, oldjno=oldjob.jno, newjno=newjob.jno)",
        )
        .unwrap();
        match c {
            Command::DefineRule(r) => {
                assert_eq!(
                    r.on,
                    Some(EventSpec {
                        kind: EventKind::Replace(Some(vec!["jno".into()])),
                        relation: "emp".into()
                    })
                );
                assert_eq!(r.cond_from.len(), 2);
            }
            other => panic!("wrong command: {other:?}"),
        }
    }

    #[test]
    fn parse_rule_with_priority_and_ruleset() {
        let c = parse_command("define rule r1 in payroll priority 10 if emp.sal > 100 then halt")
            .unwrap();
        match c {
            Command::DefineRule(r) => {
                assert_eq!(r.ruleset.as_deref(), Some("payroll"));
                assert_eq!(r.priority, Some(10.0));
            }
            other => panic!("wrong command: {other:?}"),
        }
    }

    #[test]
    fn parse_rule_with_block_action() {
        let c = parse_command(
            "define rule r2 if emp.sal > 30000 then do \
               append to salarywatch(name = emp.name) \
               replace emp (sal = 30000) \
             end",
        )
        .unwrap();
        match c {
            Command::DefineRule(r) => assert_eq!(r.action.len(), 2),
            other => panic!("wrong command: {other:?}"),
        }
    }

    #[test]
    fn rule_without_on_or_if_rejected() {
        assert!(parse_command("define rule bad then halt").is_err());
    }

    #[test]
    fn parse_new_predicate() {
        let e = parse_expr("new(emp)").unwrap();
        assert_eq!(e, Expr::New { var: "emp".into() });
    }

    #[test]
    fn expression_precedence() {
        let e = parse_expr("emp.a + emp.b * 2 = 10 and emp.c < 5 or emp.d > 1").unwrap();
        // or at top
        let Expr::Binary {
            op: BinOp::Or,
            left,
            ..
        } = e
        else {
            panic!("expected or at top");
        };
        let Expr::Binary {
            op: BinOp::And,
            left: cmp,
            ..
        } = *left
        else {
            panic!("expected and under or");
        };
        let Expr::Binary {
            op: BinOp::Eq,
            left: add,
            ..
        } = *cmp
        else {
            panic!("expected = under and");
        };
        let Expr::Binary {
            op: BinOp::Add,
            right: mul,
            ..
        } = *add
        else {
            panic!("expected + under =");
        };
        assert!(matches!(*mul, Expr::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn not_and_negation() {
        let e = parse_expr("not emp.flag = true").unwrap();
        assert!(matches!(
            e,
            Expr::Unary {
                op: UnaryOp::Not,
                ..
            }
        ));
        let e = parse_expr("-emp.x < 0").unwrap();
        let Expr::Binary { left, .. } = e else {
            panic!()
        };
        assert!(matches!(
            *left,
            Expr::Unary {
                op: UnaryOp::Neg,
                ..
            }
        ));
    }

    #[test]
    fn parse_script_multiple() {
        let cmds = parse_script("create t (x = int); append t (x = 1); halt").unwrap();
        assert_eq!(cmds.len(), 3);
    }

    #[test]
    fn parse_index_ddl() {
        let c = parse_command("define index on emp (sal) using btree").unwrap();
        assert!(matches!(
            c,
            Command::CreateIndex {
                kind: IndexKind::BTree,
                ..
            }
        ));
        let c = parse_command("define index on emp (dno) using hash").unwrap();
        assert!(matches!(
            c,
            Command::CreateIndex {
                kind: IndexKind::Hash,
                ..
            }
        ));
    }

    #[test]
    fn activate_deactivate_drop() {
        assert!(matches!(
            parse_command("activate rule r").unwrap(),
            Command::ActivateRule { .. }
        ));
        assert!(matches!(
            parse_command("deactivate rule r").unwrap(),
            Command::DeactivateRule { .. }
        ));
        assert!(matches!(
            parse_command("destroy rule r").unwrap(),
            Command::DropRule { .. }
        ));
    }

    #[test]
    fn where_before_from_accepted() {
        let c = parse_command("delete e where e.x = 1 from e in t").unwrap();
        match c {
            Command::Delete { var, from, qual } => {
                assert_eq!(var, "e");
                assert_eq!(from.len(), 1);
                assert!(qual.is_some());
            }
            other => panic!("wrong command: {other:?}"),
        }
    }
}

#[cfg(test)]
mod fuzz {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The lexer+parser must never panic — any byte soup either parses
        /// or returns a structured error.
        #[test]
        fn parser_never_panics(src in "\\PC{0,120}") {
            let _ = parse_script(&src);
            let _ = parse_expr(&src);
        }

        /// ARL-shaped noise: random keyword salads stay panic-free too.
        #[test]
        fn keyword_salad_never_panics(
            words in proptest::collection::vec(
                prop_oneof![
                    Just("define"), Just("rule"), Just("on"), Just("if"),
                    Just("then"), Just("do"), Just("end"), Just("append"),
                    Just("delete"), Just("replace"), Just("retrieve"),
                    Just("where"), Just("from"), Just("previous"), Just("new"),
                    Just("("), Just(")"), Just("="), Just("<"), Just("."),
                    Just("emp"), Just("sal"), Just("1"), Just("\"x\""),
                    Just("and"), Just("halt"), Just("notify"), Just(","),
                ],
                0..25,
            )
        ) {
            let src = words.join(" ");
            let _ = parse_script(&src);
        }
    }
}
