//! Semantic analysis: resolve tuple variables and attribute references,
//! light type checking, and production of resolved command forms for the
//! planner.

use crate::ast::{BinOp, Command, EventKind, EventSpec, Expr, FromItem, Literal, Target, UnaryOp};
use crate::binding::Pnode;
use crate::error::{QueryError, QueryResult};
use ariel_storage::{AttrType, Catalog, SchemaRef, Value};

/// A resolved (index-based) expression.
#[derive(Debug, Clone, PartialEq)]
pub enum RExpr {
    /// Constant value.
    Const(Value),
    /// Current value of `vars[var].attr`.
    Attr {
        /// Variable index.
        var: usize,
        /// Attribute position.
        attr: usize,
    },
    /// Previous (start-of-transition) value of `vars[var].attr`.
    Prev {
        /// Variable index.
        var: usize,
        /// Attribute position.
        attr: usize,
    },
    /// `new(var)` — always true.
    AlwaysTrue,
    /// Unary operator application.
    Unary {
        /// The operator.
        op: UnaryOp,
        /// The operand.
        expr: Box<RExpr>,
    },
    /// Binary operator application.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        left: Box<RExpr>,
        /// Right operand.
        right: Box<RExpr>,
    },
}

impl RExpr {
    /// Indices of all variables referenced, ascending and deduplicated.
    pub fn vars_used(&self) -> Vec<usize> {
        let mut v = Vec::new();
        self.collect_vars(&mut v);
        v.sort_unstable();
        v.dedup();
        v
    }

    fn collect_vars(&self, out: &mut Vec<usize>) {
        match self {
            RExpr::Const(_) | RExpr::AlwaysTrue => {}
            RExpr::Attr { var, .. } | RExpr::Prev { var, .. } => out.push(*var),
            RExpr::Unary { expr, .. } => expr.collect_vars(out),
            RExpr::Binary { left, right, .. } => {
                left.collect_vars(out);
                right.collect_vars(out);
            }
        }
    }

    /// Split a conjunction into its conjuncts.
    pub fn conjuncts(self) -> Vec<RExpr> {
        match self {
            RExpr::Binary {
                op: BinOp::And,
                left,
                right,
            } => {
                let mut out = left.conjuncts();
                out.extend(right.conjuncts());
                out
            }
            other => vec![other],
        }
    }

    /// Rebuild a conjunction from conjuncts; `None` if empty.
    pub fn conjoin(parts: Vec<RExpr>) -> Option<RExpr> {
        parts.into_iter().reduce(|a, b| RExpr::Binary {
            op: BinOp::And,
            left: Box::new(a),
            right: Box::new(b),
        })
    }

    /// Whether any sub-expression is a `Prev` reference to `var`.
    pub fn has_prev_ref(&self, var: usize) -> bool {
        match self {
            RExpr::Prev { var: v, .. } => *v == var,
            RExpr::Unary { expr, .. } => expr.has_prev_ref(var),
            RExpr::Binary { left, right, .. } => left.has_prev_ref(var) || right.has_prev_ref(var),
            _ => false,
        }
    }

    /// Rewrite variable indices through a mapping (used when extracting
    /// single-variable predicates for α-memory nodes).
    pub fn remap_vars(&self, map: &dyn Fn(usize) -> usize) -> RExpr {
        match self {
            RExpr::Const(v) => RExpr::Const(v.clone()),
            RExpr::AlwaysTrue => RExpr::AlwaysTrue,
            RExpr::Attr { var, attr } => RExpr::Attr {
                var: map(*var),
                attr: *attr,
            },
            RExpr::Prev { var, attr } => RExpr::Prev {
                var: map(*var),
                attr: *attr,
            },
            RExpr::Unary { op, expr } => RExpr::Unary {
                op: *op,
                expr: Box::new(expr.remap_vars(map)),
            },
            RExpr::Binary { op, left, right } => RExpr::Binary {
                op: *op,
                left: Box::new(left.remap_vars(map)),
                right: Box::new(right.remap_vars(map)),
            },
        }
    }
}

/// Static type of a resolved expression over the given variables, where
/// inferable (`None` for `Null` constants and mixed-unknown arithmetic).
pub fn infer_type(e: &RExpr, vars: &[VarBinding]) -> Option<AttrType> {
    match e {
        RExpr::Const(Value::Int(_)) => Some(AttrType::Int),
        RExpr::Const(Value::Float(_)) => Some(AttrType::Float),
        RExpr::Const(Value::Str(_) | Value::Sym(_)) => Some(AttrType::Str),
        RExpr::Const(Value::Bool(_)) => Some(AttrType::Bool),
        RExpr::Const(Value::Null) => None,
        RExpr::AlwaysTrue => Some(AttrType::Bool),
        RExpr::Attr { var, attr } | RExpr::Prev { var, attr } => {
            Some(vars[*var].schema.attr(*attr).ty)
        }
        RExpr::Unary {
            op: UnaryOp::Not, ..
        } => Some(AttrType::Bool),
        RExpr::Unary {
            op: UnaryOp::Neg,
            expr,
        } => infer_type(expr, vars),
        RExpr::Binary { op, left, right } => {
            if op.is_comparison() || matches!(op, BinOp::And | BinOp::Or) {
                Some(AttrType::Bool)
            } else {
                // arithmetic: float if either side is float
                match (infer_type(left, vars), infer_type(right, vars)) {
                    (Some(AttrType::Float), _) | (_, Some(AttrType::Float)) => {
                        Some(AttrType::Float)
                    }
                    (Some(AttrType::Int), Some(AttrType::Int)) => Some(AttrType::Int),
                    _ => None,
                }
            }
        }
    }
}

/// Where a resolved tuple variable gets its bindings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VarSource {
    /// A scan of the base relation.
    Relation,
    /// Column `col` of the rule's P-node (shared variable in a rule action).
    Pnode {
        /// P-node column index.
        col: usize,
    },
}

/// A resolved tuple variable.
#[derive(Debug, Clone)]
pub struct VarBinding {
    /// Variable name as written.
    pub name: String,
    /// Base relation name (for P-node variables: the relation the bound
    /// tuples live in, used by `replace'`/`delete'`).
    pub rel: String,
    /// Schema of the bound tuples.
    pub schema: SchemaRef,
    /// Binding source.
    pub source: VarSource,
}

/// Variables + qualification of a resolved query.
#[derive(Debug, Clone)]
pub struct QuerySpec {
    /// Tuple variables in scope, in binding order.
    pub vars: Vec<VarBinding>,
    /// The resolved qualification.
    pub qual: Option<RExpr>,
}

impl QuerySpec {
    /// Index of a variable by name.
    pub fn var_of(&self, name: &str) -> Option<usize> {
        self.vars.iter().position(|v| v.name == name)
    }
}

/// A resolved data-manipulation command, ready for planning.
#[derive(Debug, Clone)]
pub enum RCommand {
    /// Resolved `append`.
    Append {
        /// Target relation name.
        target: String,
        /// Target relation schema.
        target_schema: SchemaRef,
        /// (attribute position in target, value expression)
        assignments: Vec<(usize, RExpr)>,
        /// Qualification variables and predicate.
        spec: QuerySpec,
    },
    /// Resolved `delete`.
    Delete {
        /// Index of the target variable in `spec.vars`.
        var: usize,
        /// Qualification variables and predicate.
        spec: QuerySpec,
    },
    /// Resolved `replace`.
    Replace {
        /// Index of the target variable in `spec.vars`.
        var: usize,
        /// (attribute position, value expression) pairs.
        assignments: Vec<(usize, RExpr)>,
        /// Qualification variables and predicate.
        spec: QuerySpec,
    },
    /// Resolved `retrieve`.
    Retrieve {
        /// Destination relation for `retrieve into`.
        into: Option<String>,
        /// (column name, value expression) pairs.
        targets: Vec<(String, RExpr)>,
        /// Qualification variables and predicate.
        spec: QuerySpec,
    },
    /// Resolved `notify`: like a retrieve, but rows become an asynchronous
    /// notification instead of a result set.
    Notify {
        /// Channel name.
        channel: String,
        /// (column name, value expression) pairs.
        targets: Vec<(String, RExpr)>,
        /// Qualification variables and predicate.
        spec: QuerySpec,
    },
    /// TID-directed delete through a P-node column (§5.1).
    DeletePrimed {
        /// Index of the P-node target variable in `spec.vars`.
        pvar: usize,
        /// Qualification variables and predicate.
        spec: QuerySpec,
    },
    /// TID-directed replace through a P-node column (§5.1).
    ReplacePrimed {
        /// Index of the P-node target variable in `spec.vars`.
        pvar: usize,
        /// (attribute position, value expression) pairs.
        assignments: Vec<(usize, RExpr)>,
        /// Qualification variables and predicate.
        spec: QuerySpec,
    },
}

impl RCommand {
    /// The query spec of this command.
    pub fn spec(&self) -> &QuerySpec {
        match self {
            RCommand::Append { spec, .. }
            | RCommand::Delete { spec, .. }
            | RCommand::Replace { spec, .. }
            | RCommand::Retrieve { spec, .. }
            | RCommand::Notify { spec, .. }
            | RCommand::DeletePrimed { spec, .. }
            | RCommand::ReplacePrimed { spec, .. } => spec,
        }
    }
}

/// A resolved rule condition: the query spec plus the event / transition
/// classification of each variable (§4.3.2).
#[derive(Debug, Clone)]
pub struct ResolvedCondition {
    /// The condition's variables and qualification.
    pub spec: QuerySpec,
    /// Variable bound by the ON clause, if any.
    pub on_var: Option<usize>,
    /// The ON event kind, if any.
    pub event: Option<EventKind>,
    /// Variables with `previous` references (transition conditions).
    pub trans_vars: Vec<usize>,
}

/// Name resolver over a catalog, optionally inside a rule-action P-node
/// context.
pub struct Resolver<'a> {
    catalog: &'a Catalog,
    pnode: Option<&'a Pnode>,
}

struct Scope {
    vars: Vec<VarBinding>,
}

impl Scope {
    fn lookup(&self, name: &str) -> Option<usize> {
        self.vars.iter().position(|v| v.name == name)
    }
}

impl<'a> Resolver<'a> {
    /// Resolver for top-level commands.
    pub fn new(catalog: &'a Catalog) -> Self {
        Resolver {
            catalog,
            pnode: None,
        }
    }

    /// Resolver for rule-action commands: shared variables resolve to
    /// columns of `pnode`.
    pub fn with_pnode(catalog: &'a Catalog, pnode: &'a Pnode) -> Self {
        Resolver {
            catalog,
            pnode: Some(pnode),
        }
    }

    fn bind_var(&self, scope: &mut Scope, name: &str, rel: Option<&str>) -> QueryResult<usize> {
        if let Some(i) = scope.lookup(name) {
            return Ok(i);
        }
        // P-node columns shadow relations of the same name inside actions.
        if let Some(p) = self.pnode {
            if let Some(col) = p.col_of(name) {
                let c = &p.cols()[col];
                scope.vars.push(VarBinding {
                    name: name.to_string(),
                    rel: c.rel.clone(),
                    schema: c.schema.clone(),
                    source: VarSource::Pnode { col },
                });
                return Ok(scope.vars.len() - 1);
            }
        }
        let rel_name = rel.unwrap_or(name);
        let rel_ref = self.catalog.get(rel_name).ok_or_else(|| {
            QueryError::Semantic(format!(
                "unknown tuple variable `{name}` (no relation of that name)"
            ))
        })?;
        let schema = rel_ref.borrow().schema().clone();
        scope.vars.push(VarBinding {
            name: name.to_string(),
            rel: rel_name.to_string(),
            schema,
            source: VarSource::Relation,
        });
        Ok(scope.vars.len() - 1)
    }

    fn bind_from(&self, scope: &mut Scope, from: &[FromItem]) -> QueryResult<()> {
        for item in from {
            if scope.lookup(&item.var).is_some() {
                return Err(QueryError::Semantic(format!(
                    "duplicate tuple variable `{}` in from-list",
                    item.var
                )));
            }
            self.bind_var(scope, &item.var, Some(&item.rel))?;
        }
        Ok(())
    }

    fn resolve_expr(&self, scope: &mut Scope, e: &Expr) -> QueryResult<RExpr> {
        match e {
            Expr::Literal(l) => Ok(RExpr::Const(match l {
                Literal::Int(i) => Value::Int(*i),
                Literal::Float(x) => Value::Float(*x),
                Literal::Str(s) => Value::Str(s.clone()),
                Literal::Bool(b) => Value::Bool(*b),
            })),
            Expr::Attr {
                var,
                attr,
                previous,
            } => {
                let v = self.bind_var(scope, var, None)?;
                let schema = scope.vars[v].schema.clone();
                let a = schema.require(attr).map_err(|_| {
                    QueryError::Semantic(format!(
                        "relation `{}` has no attribute `{attr}`",
                        scope.vars[v].rel
                    ))
                })?;
                Ok(if *previous {
                    RExpr::Prev { var: v, attr: a }
                } else {
                    RExpr::Attr { var: v, attr: a }
                })
            }
            Expr::New { var } => {
                self.bind_var(scope, var, None)?;
                Ok(RExpr::AlwaysTrue)
            }
            Expr::Unary { op, expr } => Ok(RExpr::Unary {
                op: *op,
                expr: Box::new(self.resolve_expr(scope, expr)?),
            }),
            Expr::Binary { op, left, right } => {
                let l = self.resolve_expr(scope, left)?;
                let r = self.resolve_expr(scope, right)?;
                self.check_types(*op, &l, &r, scope)?;
                Ok(RExpr::Binary {
                    op: *op,
                    left: Box::new(l),
                    right: Box::new(r),
                })
            }
        }
    }

    fn check_types(&self, op: BinOp, l: &RExpr, r: &RExpr, scope: &Scope) -> QueryResult<()> {
        let lt = infer_type(l, &scope.vars);
        let rt = infer_type(r, &scope.vars);
        let numeric =
            |t: &Option<AttrType>| matches!(t, None | Some(AttrType::Int) | Some(AttrType::Float));
        match op {
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div
                if (!numeric(&lt) || !numeric(&rt)) =>
            {
                return Err(QueryError::Semantic(format!(
                    "arithmetic `{op}` requires numeric operands"
                )));
            }
            BinOp::And | BinOp::Or => {
                for t in [&lt, &rt] {
                    if !matches!(t, None | Some(AttrType::Bool)) {
                        return Err(QueryError::Semantic(format!(
                            "`{op}` requires boolean operands"
                        )));
                    }
                }
            }
            _ if op.is_comparison() => {
                let compatible = match (&lt, &rt) {
                    (None, _) | (_, None) => true,
                    (Some(a), Some(b)) => a == b || (numeric(&Some(*a)) && numeric(&Some(*b))),
                };
                if !compatible {
                    return Err(QueryError::Semantic(format!(
                        "cannot compare {} with {}",
                        lt.map_or("?".into(), |t| t.to_string()),
                        rt.map_or("?".into(), |t| t.to_string()),
                    )));
                }
            }
            _ => {}
        }
        Ok(())
    }

    /// Resolve a DML command ([`Command::Append`], `Delete`, `Replace`,
    /// `Retrieve`, and the primed forms).
    pub fn resolve_command(&self, cmd: &Command) -> QueryResult<RCommand> {
        match cmd {
            Command::Append {
                target,
                assignments,
                from,
                qual,
            } => {
                let rel = self.catalog.require(target)?;
                let target_schema = rel.borrow().schema().clone();
                let mut scope = Scope { vars: Vec::new() };
                self.bind_from(&mut scope, from)?;
                let qual = qual
                    .as_ref()
                    .map(|q| self.resolve_expr(&mut scope, q))
                    .transpose()?;
                let mut resolved_assign = Vec::new();
                for (attr, e) in assignments {
                    let pos = target_schema.require(attr).map_err(|_| {
                        QueryError::Semantic(format!(
                            "relation `{target}` has no attribute `{attr}`"
                        ))
                    })?;
                    let re = self.resolve_expr(&mut scope, e)?;
                    resolved_assign.push((pos, re));
                }
                Ok(RCommand::Append {
                    target: target.clone(),
                    target_schema,
                    assignments: resolved_assign,
                    spec: QuerySpec {
                        vars: scope.vars,
                        qual,
                    },
                })
            }
            Command::Delete { var, from, qual } => {
                let mut scope = Scope { vars: Vec::new() };
                self.bind_from(&mut scope, from)?;
                let v = self.bind_var(&mut scope, var, None)?;
                if scope.vars[v].source != VarSource::Relation {
                    return Err(QueryError::Semantic(format!(
                        "`delete {var}`: target must be a base relation variable \
                         (use delete' for P-node variables)"
                    )));
                }
                let qual = qual
                    .as_ref()
                    .map(|q| self.resolve_expr(&mut scope, q))
                    .transpose()?;
                Ok(RCommand::Delete {
                    var: v,
                    spec: QuerySpec {
                        vars: scope.vars,
                        qual,
                    },
                })
            }
            Command::Replace {
                var,
                assignments,
                from,
                qual,
            } => {
                let mut scope = Scope { vars: Vec::new() };
                self.bind_from(&mut scope, from)?;
                let v = self.bind_var(&mut scope, var, None)?;
                if scope.vars[v].source != VarSource::Relation {
                    return Err(QueryError::Semantic(format!(
                        "`replace {var}`: target must be a base relation variable \
                         (use replace' for P-node variables)"
                    )));
                }
                let schema = scope.vars[v].schema.clone();
                let qual = qual
                    .as_ref()
                    .map(|q| self.resolve_expr(&mut scope, q))
                    .transpose()?;
                let mut resolved_assign = Vec::new();
                for (attr, e) in assignments {
                    let pos = schema.require(attr).map_err(|_| {
                        QueryError::Semantic(format!(
                            "relation `{}` has no attribute `{attr}`",
                            scope.vars[v].rel
                        ))
                    })?;
                    resolved_assign.push((pos, self.resolve_expr(&mut scope, e)?));
                }
                Ok(RCommand::Replace {
                    var: v,
                    assignments: resolved_assign,
                    spec: QuerySpec {
                        vars: scope.vars,
                        qual,
                    },
                })
            }
            Command::Retrieve {
                into,
                targets,
                from,
                qual,
            } => {
                let mut scope = Scope { vars: Vec::new() };
                self.bind_from(&mut scope, from)?;
                let qual = qual
                    .as_ref()
                    .map(|q| self.resolve_expr(&mut scope, q))
                    .transpose()?;
                let mut resolved_targets = Vec::new();
                for t in targets {
                    match t {
                        Target::Expr { name, expr } => {
                            resolved_targets
                                .push((name.clone(), self.resolve_expr(&mut scope, expr)?));
                        }
                        Target::All { var } => {
                            let v = self.bind_var(&mut scope, var, None)?;
                            let schema = scope.vars[v].schema.clone();
                            for (a, def) in schema.attrs().iter().enumerate() {
                                resolved_targets
                                    .push((def.name.clone(), RExpr::Attr { var: v, attr: a }));
                            }
                        }
                    }
                }
                Ok(RCommand::Retrieve {
                    into: into.clone(),
                    targets: resolved_targets,
                    spec: QuerySpec {
                        vars: scope.vars,
                        qual,
                    },
                })
            }
            Command::Notify {
                channel,
                targets,
                from,
                qual,
            } => {
                let mut scope = Scope { vars: Vec::new() };
                self.bind_from(&mut scope, from)?;
                let qual = qual
                    .as_ref()
                    .map(|q| self.resolve_expr(&mut scope, q))
                    .transpose()?;
                let mut resolved_targets = Vec::new();
                for t in targets {
                    match t {
                        Target::Expr { name, expr } => {
                            resolved_targets
                                .push((name.clone(), self.resolve_expr(&mut scope, expr)?));
                        }
                        Target::All { var } => {
                            let v = self.bind_var(&mut scope, var, None)?;
                            let schema = scope.vars[v].schema.clone();
                            for (a, def) in schema.attrs().iter().enumerate() {
                                resolved_targets
                                    .push((def.name.clone(), RExpr::Attr { var: v, attr: a }));
                            }
                        }
                    }
                }
                Ok(RCommand::Notify {
                    channel: channel.clone(),
                    targets: resolved_targets,
                    spec: QuerySpec {
                        vars: scope.vars,
                        qual,
                    },
                })
            }
            Command::DeletePrimed { pvar, from, qual } => {
                let mut scope = Scope { vars: Vec::new() };
                self.bind_from(&mut scope, from)?;
                let v = self.bind_var(&mut scope, pvar, None)?;
                if !matches!(scope.vars[v].source, VarSource::Pnode { .. }) {
                    return Err(QueryError::Semantic(format!(
                        "delete' target `{pvar}` is not a P-node variable"
                    )));
                }
                let qual = qual
                    .as_ref()
                    .map(|q| self.resolve_expr(&mut scope, q))
                    .transpose()?;
                Ok(RCommand::DeletePrimed {
                    pvar: v,
                    spec: QuerySpec {
                        vars: scope.vars,
                        qual,
                    },
                })
            }
            Command::ReplacePrimed {
                pvar,
                assignments,
                from,
                qual,
            } => {
                let mut scope = Scope { vars: Vec::new() };
                self.bind_from(&mut scope, from)?;
                let v = self.bind_var(&mut scope, pvar, None)?;
                if !matches!(scope.vars[v].source, VarSource::Pnode { .. }) {
                    return Err(QueryError::Semantic(format!(
                        "replace' target `{pvar}` is not a P-node variable"
                    )));
                }
                let schema = scope.vars[v].schema.clone();
                let qual = qual
                    .as_ref()
                    .map(|q| self.resolve_expr(&mut scope, q))
                    .transpose()?;
                let mut resolved_assign = Vec::new();
                for (attr, e) in assignments {
                    let pos = schema.require(attr).map_err(|_| {
                        QueryError::Semantic(format!(
                            "relation `{}` has no attribute `{attr}`",
                            scope.vars[v].rel
                        ))
                    })?;
                    resolved_assign.push((pos, self.resolve_expr(&mut scope, e)?));
                }
                Ok(RCommand::ReplacePrimed {
                    pvar: v,
                    assignments: resolved_assign,
                    spec: QuerySpec {
                        vars: scope.vars,
                        qual,
                    },
                })
            }
            other => Err(QueryError::Semantic(format!(
                "`{}` is not a data-manipulation command",
                other.kind_name()
            ))),
        }
    }

    /// Resolve a rule condition (ON clause + IF qualification + from-list).
    pub fn resolve_condition(
        &self,
        on: Option<&EventSpec>,
        condition: Option<&Expr>,
        from: &[FromItem],
    ) -> QueryResult<ResolvedCondition> {
        let mut scope = Scope { vars: Vec::new() };
        self.bind_from(&mut scope, from)?;
        // The ON relation is always a variable, even without an IF clause.
        let on_var = on
            .map(|spec| self.bind_var(&mut scope, &spec.relation, None))
            .transpose()?;
        let qual = condition
            .as_ref()
            .map(|q| self.resolve_expr(&mut scope, q))
            .transpose()?;
        // Classify transition variables.
        let mut trans_vars = Vec::new();
        if let Some(q) = &qual {
            for v in 0..scope.vars.len() {
                if q.has_prev_ref(v) {
                    trans_vars.push(v);
                }
            }
        }
        // `previous` is meaningless for freshly-appended or deleted tuples.
        if let (Some(ov), Some(spec)) = (on_var, on) {
            if trans_vars.contains(&ov)
                && matches!(spec.kind, EventKind::Append | EventKind::Delete)
            {
                return Err(QueryError::Semantic(format!(
                    "`previous {}…` cannot be combined with `on {}`",
                    spec.relation,
                    match spec.kind {
                        EventKind::Append => "append",
                        EventKind::Delete => "delete",
                        EventKind::Replace(_) => unreachable!(),
                    }
                )));
            }
            // validate replace target-list attributes
            if let EventKind::Replace(Some(attrs)) = &spec.kind {
                let schema = &scope.vars[ov].schema;
                for a in attrs {
                    schema.require(a).map_err(|_| {
                        QueryError::Semantic(format!(
                            "relation `{}` has no attribute `{a}` (on replace target-list)",
                            spec.relation
                        ))
                    })?;
                }
            }
        }
        // Rule conditions range over base relations only.
        if let Some(v) = scope
            .vars
            .iter()
            .find(|v| !matches!(v.source, VarSource::Relation))
        {
            return Err(QueryError::Semantic(format!(
                "rule condition variable `{}` must range over a base relation",
                v.name
            )));
        }
        Ok(ResolvedCondition {
            spec: QuerySpec {
                vars: scope.vars,
                qual,
            },
            on_var,
            event: on.map(|s| s.kind.clone()),
            trans_vars,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_command, parse_expr};
    use ariel_storage::Schema;

    fn test_catalog() -> Catalog {
        let mut c = Catalog::new();
        c.create(
            "emp",
            Schema::of(&[
                ("name", AttrType::Str),
                ("age", AttrType::Int),
                ("sal", AttrType::Float),
                ("dno", AttrType::Int),
                ("jno", AttrType::Int),
            ]),
        )
        .unwrap();
        c.create(
            "dept",
            Schema::of(&[("dno", AttrType::Int), ("name", AttrType::Str)]),
        )
        .unwrap();
        c.create(
            "job",
            Schema::of(&[("jno", AttrType::Int), ("paygrade", AttrType::Int)]),
        )
        .unwrap();
        c
    }

    #[test]
    fn implicit_default_variables() {
        let cat = test_catalog();
        let r = Resolver::new(&cat);
        let cmd = parse_command("delete emp where emp.sal > 100 and emp.dno = dept.dno").unwrap();
        let rc = r.resolve_command(&cmd).unwrap();
        let spec = rc.spec();
        assert_eq!(spec.vars.len(), 2);
        assert_eq!(spec.vars[0].name, "emp");
        assert_eq!(spec.vars[1].name, "dept");
    }

    #[test]
    fn from_list_binds_aliases() {
        let cat = test_catalog();
        let r = Resolver::new(&cat);
        let cmd = parse_command(
            "retrieve (a = oldjob.paygrade) from oldjob in job, newjob in job \
             where newjob.paygrade < oldjob.paygrade",
        )
        .unwrap();
        let rc = r.resolve_command(&cmd).unwrap();
        assert_eq!(rc.spec().vars.len(), 2);
        assert!(rc.spec().vars.iter().all(|v| v.rel == "job"));
    }

    #[test]
    fn unknown_variable_errors() {
        let cat = test_catalog();
        let r = Resolver::new(&cat);
        let cmd = parse_command("delete emp where nothere.x = 1").unwrap();
        assert!(matches!(
            r.resolve_command(&cmd),
            Err(QueryError::Semantic(_))
        ));
    }

    #[test]
    fn unknown_attribute_errors() {
        let cat = test_catalog();
        let r = Resolver::new(&cat);
        let cmd = parse_command("delete emp where emp.bogus = 1").unwrap();
        assert!(r.resolve_command(&cmd).is_err());
    }

    #[test]
    fn type_mismatch_comparison_errors() {
        let cat = test_catalog();
        let r = Resolver::new(&cat);
        let cmd = parse_command("delete emp where emp.name > 5").unwrap();
        assert!(r.resolve_command(&cmd).is_err());
    }

    #[test]
    fn arithmetic_on_strings_errors() {
        let cat = test_catalog();
        let r = Resolver::new(&cat);
        let cmd = parse_command("delete emp where emp.name + 1 = 2").unwrap();
        assert!(r.resolve_command(&cmd).is_err());
    }

    #[test]
    fn retrieve_all_expands() {
        let cat = test_catalog();
        let r = Resolver::new(&cat);
        let cmd = parse_command("retrieve (dept.all)").unwrap();
        let RCommand::Retrieve { targets, .. } = r.resolve_command(&cmd).unwrap() else {
            panic!()
        };
        assert_eq!(targets.len(), 2);
        assert_eq!(targets[0].0, "dno");
    }

    #[test]
    fn append_assignments_resolved() {
        let cat = test_catalog();
        let r = Resolver::new(&cat);
        let cmd =
            parse_command("append dept (dno = emp.dno, name = \"x\") where emp.sal > 10").unwrap();
        let RCommand::Append {
            target,
            assignments,
            spec,
            ..
        } = r.resolve_command(&cmd).unwrap()
        else {
            panic!()
        };
        assert_eq!(target, "dept");
        assert_eq!(assignments.len(), 2);
        assert_eq!(assignments[0].0, 0);
        assert_eq!(spec.vars.len(), 1); // emp bound implicitly
    }

    #[test]
    fn condition_classifies_on_and_transition_vars() {
        let cat = test_catalog();
        let r = Resolver::new(&cat);
        // finddemotions (§2.3)
        let cond = parse_expr(
            "newjob.jno = emp.jno and oldjob.jno = previous emp.jno \
             and newjob.paygrade < oldjob.paygrade",
        )
        .unwrap();
        let rc = r
            .resolve_condition(
                Some(&EventSpec {
                    kind: EventKind::Replace(Some(vec!["jno".into()])),
                    relation: "emp".into(),
                }),
                Some(&cond),
                &[
                    FromItem {
                        var: "oldjob".into(),
                        rel: "job".into(),
                    },
                    FromItem {
                        var: "newjob".into(),
                        rel: "job".into(),
                    },
                ],
            )
            .unwrap();
        assert_eq!(rc.spec.vars.len(), 3);
        let emp = rc.spec.var_of("emp").unwrap();
        assert_eq!(rc.on_var, Some(emp));
        assert_eq!(rc.trans_vars, vec![emp]);
    }

    #[test]
    fn previous_with_on_append_rejected() {
        let cat = test_catalog();
        let r = Resolver::new(&cat);
        let cond = parse_expr("emp.sal > previous emp.sal").unwrap();
        let err = r.resolve_condition(
            Some(&EventSpec {
                kind: EventKind::Append,
                relation: "emp".into(),
            }),
            Some(&cond),
            &[],
        );
        assert!(err.is_err());
    }

    #[test]
    fn on_without_if_still_binds_var() {
        let cat = test_catalog();
        let r = Resolver::new(&cat);
        let rc = r
            .resolve_condition(
                Some(&EventSpec {
                    kind: EventKind::Delete,
                    relation: "emp".into(),
                }),
                None,
                &[],
            )
            .unwrap();
        assert_eq!(rc.spec.vars.len(), 1);
        assert_eq!(rc.on_var, Some(0));
    }

    #[test]
    fn bad_replace_target_list_attr_rejected() {
        let cat = test_catalog();
        let r = Resolver::new(&cat);
        let err = r.resolve_condition(
            Some(&EventSpec {
                kind: EventKind::Replace(Some(vec!["nope".into()])),
                relation: "emp".into(),
            }),
            None,
            &[],
        );
        assert!(err.is_err());
    }

    #[test]
    fn conjunct_roundtrip() {
        let cat = test_catalog();
        let r = Resolver::new(&cat);
        let cmd =
            parse_command("delete emp where emp.sal > 1 and emp.age < 2 and emp.dno = 3").unwrap();
        let rc = r.resolve_command(&cmd).unwrap();
        let q = rc.spec().qual.clone().unwrap();
        let parts = q.clone().conjuncts();
        assert_eq!(parts.len(), 3);
        assert_eq!(RExpr::conjoin(parts), Some(q));
    }

    #[test]
    fn pnode_variables_resolve_in_action_context() {
        use crate::binding::{Pnode, PnodeCol};
        let cat = test_catalog();
        let emp_schema = cat.get("emp").unwrap().borrow().schema().clone();
        let pnode = Pnode::new(vec![PnodeCol {
            var: "emp".into(),
            rel: "emp".into(),
            schema: emp_schema,
            has_prev: false,
        }]);
        let r = Resolver::with_pnode(&cat, &pnode);
        // replace' binds its target through the P-node
        let cmd = Command::ReplacePrimed {
            pvar: "emp".into(),
            assignments: vec![("sal".into(), Expr::Literal(Literal::Int(30000)))],
            from: vec![],
            qual: None,
        };
        let RCommand::ReplacePrimed { pvar, spec, .. } = r.resolve_command(&cmd).unwrap() else {
            panic!()
        };
        assert!(matches!(
            spec.vars[pvar].source,
            VarSource::Pnode { col: 0 }
        ));
    }

    #[test]
    fn plain_replace_of_pnode_var_rejected() {
        use crate::binding::{Pnode, PnodeCol};
        let cat = test_catalog();
        let emp_schema = cat.get("emp").unwrap().borrow().schema().clone();
        let pnode = Pnode::new(vec![PnodeCol {
            var: "emp".into(),
            rel: "emp".into(),
            schema: emp_schema,
            has_prev: false,
        }]);
        let r = Resolver::with_pnode(&cat, &pnode);
        let cmd = parse_command("replace emp (sal = 1)").unwrap();
        assert!(r.resolve_command(&cmd).is_err());
    }

    #[test]
    fn remap_vars() {
        let e = RExpr::Binary {
            op: BinOp::Eq,
            left: Box::new(RExpr::Attr { var: 2, attr: 0 }),
            right: Box::new(RExpr::Prev { var: 2, attr: 1 }),
        };
        let m = e.remap_vars(&|_| 0);
        assert_eq!(m.vars_used(), vec![0]);
    }
}
