//! # ariel-query
//!
//! The POSTQUEL-subset query language of the Ariel reproduction: lexer,
//! parser, semantic analysis, a cost-based optimizer, a materializing
//! executor, and the rule-action machinery the paper builds on top of it —
//! the `PnodeScan` operator, the primed `replace'`/`delete'` TID-directed
//! update commands, and query modification (§5.1–5.2).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ast;
pub mod binding;
pub mod display;
pub mod error;
pub mod exec;
pub mod expr;
pub mod lexer;
pub mod modify;
pub mod optimizer;
pub mod parser;
pub mod plan;
pub mod semantic;

pub use ast::{
    BinOp, Command, EventKind, EventSpec, Expr, FromItem, Literal, RuleDef, Target, UnaryOp,
};
pub use binding::{BoundVar, Pnode, PnodeCol, Row};
pub use error::{QueryError, QueryResult};
pub use exec::{
    execute, execute_with_plan, plan_command, run_plan, Change, CmdOutput, ExecCtx, Notification,
};
pub use expr::{eval, eval_pred, Env, PatchedEnv, SingleEnv};
pub use modify::modify_action;
pub use optimizer::Optimizer;
pub use parser::{parse_command, parse_expr, parse_script};
pub use plan::{IndexKey, Plan};
pub use semantic::{
    infer_type, QuerySpec, RCommand, RExpr, ResolvedCondition, Resolver, VarBinding, VarSource,
};
