//! Runtime variable bindings and the P-node.
//!
//! A **P-node** is "a temporary relation storing the data matching the rule
//! condition" (§2.2.3). Each row binds every tuple variable of the rule
//! condition to a concrete tuple, keeping the tuple's TID (so `replace'` and
//! `delete'` can update through it) and, for transition variables, the
//! previous value of the tuple.

use ariel_storage::{SchemaRef, Tid, Tuple};
use std::fmt;

/// One tuple variable bound to a concrete tuple.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundVar {
    /// TID of the bound tuple in its base relation. `None` for tuples that
    /// no longer exist (e.g. data bound by an ON DELETE condition) or for
    /// computed rows.
    pub tid: Option<Tid>,
    /// Current value of the tuple.
    pub tuple: Tuple,
    /// Value at the start of the transition, for transition variables
    /// (referenced via `previous var.attr`).
    pub prev: Option<Tuple>,
}

impl BoundVar {
    /// Plain binding: a live tuple with no transition history.
    pub fn plain(tid: Tid, tuple: Tuple) -> Self {
        BoundVar {
            tid: Some(tid),
            tuple,
            prev: None,
        }
    }

    /// Binding with a previous value (transition variable).
    pub fn with_prev(tid: Option<Tid>, tuple: Tuple, prev: Tuple) -> Self {
        BoundVar {
            tid,
            tuple,
            prev: Some(prev),
        }
    }

    /// Approximate heap size in bytes.
    pub fn heap_size(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.tuple.heap_size()
            + self.prev.as_ref().map_or(0, Tuple::heap_size)
    }
}

/// A row during query execution: one optional binding per tuple variable of
/// the query (slot index == variable index from semantic analysis).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Row {
    /// One optional binding per tuple variable, indexed by variable slot.
    pub slots: Vec<Option<BoundVar>>,
}

impl Row {
    /// Empty row with `n` unbound slots.
    pub fn unbound(n: usize) -> Self {
        Row {
            slots: vec![None; n],
        }
    }

    /// The binding for variable `var`, or an unbound-variable panic in debug.
    pub fn bound(&self, var: usize) -> Option<&BoundVar> {
        self.slots.get(var).and_then(|s| s.as_ref())
    }

    /// Merge another row into this one; slots bound in both must agree is
    /// not checked (the planner never produces overlapping binds).
    pub fn merge(&self, other: &Row) -> Row {
        let mut slots = self.slots.clone();
        for (i, s) in other.slots.iter().enumerate() {
            if s.is_some() {
                slots[i] = s.clone();
            }
        }
        Row { slots }
    }
}

/// Column descriptor of a P-node.
#[derive(Debug, Clone)]
pub struct PnodeCol {
    /// Tuple-variable name from the rule condition.
    pub var: String,
    /// Base relation the bound tuples live in (`replace'`/`delete'` update
    /// this relation through the stored TIDs).
    pub rel: String,
    /// Schema of the bound tuples.
    pub schema: SchemaRef,
    /// Whether rows carry a previous value for this column (transition or
    /// ON REPLACE variables).
    pub has_prev: bool,
}

/// The P-node: matched variable bindings awaiting rule execution.
#[derive(Debug, Clone, Default)]
pub struct Pnode {
    cols: Vec<PnodeCol>,
    rows: Vec<Vec<BoundVar>>,
}

impl Pnode {
    /// New empty P-node with the given columns.
    pub fn new(cols: Vec<PnodeCol>) -> Self {
        Pnode {
            cols,
            rows: Vec::new(),
        }
    }

    /// Column descriptors.
    pub fn cols(&self) -> &[PnodeCol] {
        &self.cols
    }

    /// Index of the column bound to variable `var`.
    pub fn col_of(&self, var: &str) -> Option<usize> {
        self.cols.iter().position(|c| c.var == var)
    }

    /// Current rows.
    pub fn rows(&self) -> &[Vec<BoundVar>] {
        &self.rows
    }

    /// Number of matched instantiations.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True iff no instantiations are pending.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Add an instantiation. The row must have one binding per column.
    pub fn push(&mut self, row: Vec<BoundVar>) {
        debug_assert_eq!(row.len(), self.cols.len());
        self.rows.push(row);
    }

    /// Remove every instantiation in which column `col` binds the tuple
    /// with TID `tid`. This is how TREAT handles ⁻ tokens: no join work,
    /// just P-node deletion (§4.2). Returns the number removed.
    pub fn retract(&mut self, col: usize, tid: Tid) -> usize {
        let before = self.rows.len();
        self.rows.retain(|r| r[col].tid != Some(tid));
        before - self.rows.len()
    }

    /// Drain all instantiations (consumed by a rule firing).
    pub fn drain(&mut self) -> Vec<Vec<BoundVar>> {
        std::mem::take(&mut self.rows)
    }

    /// Remove all instantiations without returning them.
    pub fn clear(&mut self) {
        self.rows.clear();
    }

    /// Approximate heap size of the stored instantiations, in bytes.
    pub fn heap_size(&self) -> usize {
        self.rows
            .iter()
            .map(|r| r.iter().map(BoundVar::heap_size).sum::<usize>())
            .sum()
    }
}

impl fmt::Display for Pnode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "P-node[{}] ({} rows)",
            self.cols
                .iter()
                .map(|c| c.var.as_str())
                .collect::<Vec<_>>()
                .join(", "),
            self.rows.len()
        )?;
        for r in &self.rows {
            for (c, b) in self.cols.iter().zip(r) {
                write!(f, "  {}={}", c.var, b.tuple)?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ariel_storage::{AttrType, Schema, Value};

    fn schema() -> SchemaRef {
        Schema::of(&[("x", AttrType::Int)])
    }

    fn bv(tid: u64, x: i64) -> BoundVar {
        BoundVar::plain(Tid(tid), Tuple::new(vec![Value::Int(x)]))
    }

    #[test]
    fn push_and_retract() {
        let mut p = Pnode::new(vec![
            PnodeCol {
                var: "a".into(),
                rel: "ra".into(),
                schema: schema(),
                has_prev: false,
            },
            PnodeCol {
                var: "b".into(),
                rel: "rb".into(),
                schema: schema(),
                has_prev: false,
            },
        ]);
        p.push(vec![bv(1, 10), bv(2, 20)]);
        p.push(vec![bv(1, 10), bv(3, 30)]);
        p.push(vec![bv(4, 40), bv(2, 20)]);
        assert_eq!(p.len(), 3);
        // retract tuple 1 from column a: removes two rows
        assert_eq!(p.retract(0, Tid(1)), 2);
        assert_eq!(p.len(), 1);
        // retracting from the wrong column removes nothing
        assert_eq!(p.retract(0, Tid(2)), 0);
        assert_eq!(p.retract(1, Tid(2)), 1);
        assert!(p.is_empty());
    }

    #[test]
    fn drain_consumes() {
        let mut p = Pnode::new(vec![PnodeCol {
            var: "a".into(),
            rel: "ra".into(),
            schema: schema(),
            has_prev: false,
        }]);
        p.push(vec![bv(1, 1)]);
        let rows = p.drain();
        assert_eq!(rows.len(), 1);
        assert!(p.is_empty());
    }

    #[test]
    fn col_lookup() {
        let p = Pnode::new(vec![
            PnodeCol {
                var: "emp".into(),
                rel: "emp".into(),
                schema: schema(),
                has_prev: true,
            },
            PnodeCol {
                var: "dept".into(),
                rel: "dept".into(),
                schema: schema(),
                has_prev: false,
            },
        ]);
        assert_eq!(p.col_of("dept"), Some(1));
        assert_eq!(p.col_of("nope"), None);
    }

    #[test]
    fn row_merge() {
        let mut a = Row::unbound(3);
        a.slots[0] = Some(bv(1, 1));
        let mut b = Row::unbound(3);
        b.slots[2] = Some(bv(2, 2));
        let m = a.merge(&b);
        assert!(m.bound(0).is_some());
        assert!(m.bound(1).is_none());
        assert!(m.bound(2).is_some());
    }

    #[test]
    fn heap_size_nonzero() {
        let b = BoundVar::with_prev(
            Some(Tid(1)),
            Tuple::new(vec![Value::from("abc")]),
            Tuple::new(vec![Value::from("ab")]),
        );
        assert!(b.heap_size() > 0);
    }
}
