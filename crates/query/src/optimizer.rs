//! Cost-based query optimizer.
//!
//! System-R-in-miniature, following the paper's architecture (§3, §5.2):
//! conjunct classification, index-aware access-path selection, greedy join
//! ordering from cardinality estimates, and the rule-action special case —
//! when variables bind to the P-node, a single `PnodeScan` is always
//! generated for them and placed leftmost in the join tree.

use crate::ast::BinOp;
use crate::binding::{Pnode, Row};
use crate::error::{QueryError, QueryResult};
use crate::expr::eval;
use crate::plan::{IndexKey, Plan};
use crate::semantic::{QuerySpec, RExpr, VarSource};
use ariel_storage::{Catalog, Value};
use std::collections::HashSet;
use std::ops::Bound;

/// Default selectivity guesses (no histograms in 1992, none here either).
const SEL_EQ: f64 = 0.1;
const SEL_RANGE: f64 = 0.3;
const SEL_OTHER: f64 = 0.5;
/// Minimum input size before a sort-merge join beats nested loops.
const SORT_MERGE_THRESHOLD: f64 = 64.0;

/// The query optimizer. Holds the catalog (for relation sizes and index
/// availability — consulted fresh on every call, which is what makes the
/// paper's *always-reoptimize* strategy pay off) and the P-node when
/// planning rule-action commands.
pub struct Optimizer<'a> {
    catalog: &'a Catalog,
    pnode: Option<&'a Pnode>,
}

/// A sargable single-variable comparison: `attr cmp constant`.
#[derive(Debug, Clone)]
struct Sarg {
    attr: usize,
    op: BinOp,
    value: Value,
}

impl<'a> Optimizer<'a> {
    /// Optimizer for top-level commands.
    pub fn new(catalog: &'a Catalog) -> Self {
        Optimizer {
            catalog,
            pnode: None,
        }
    }

    /// Optimizer for rule-action commands over `pnode`.
    pub fn with_pnode(catalog: &'a Catalog, pnode: &'a Pnode) -> Self {
        Optimizer {
            catalog,
            pnode: Some(pnode),
        }
    }

    /// Produce a physical plan binding every variable of `spec`.
    /// `spec.vars` must be non-empty (variable-free commands need no plan).
    pub fn plan(&self, spec: &QuerySpec) -> QueryResult<Plan> {
        if spec.vars.is_empty() {
            return Err(QueryError::Plan("no variables to bind".into()));
        }
        let conjuncts: Vec<RExpr> = spec.qual.clone().map(|q| q.conjuncts()).unwrap_or_default();

        // Partition conjuncts by the variables they touch.
        let nvars = spec.vars.len();
        let mut selections: Vec<Vec<RExpr>> = vec![Vec::new(); nvars];
        let mut multi: Vec<(HashSet<usize>, RExpr)> = Vec::new();
        for c in conjuncts {
            let used = c.vars_used();
            match used.len() {
                0 => multi.push((HashSet::new(), c)), // constant predicate
                1 => selections[used[0]].push(c),
                _ => multi.push((used.into_iter().collect(), c)),
            }
        }

        // Units: the P-node variables as one unit, each relation var alone.
        let pnode_vars: Vec<usize> = (0..nvars)
            .filter(|&v| matches!(spec.vars[v].source, VarSource::Pnode { .. }))
            .collect();
        let rel_vars: Vec<usize> = (0..nvars)
            .filter(|&v| matches!(spec.vars[v].source, VarSource::Relation))
            .collect();

        let mut bound: HashSet<usize> = HashSet::new();
        let mut plan: Option<Plan> = None;

        // Rule-action plans always start with the PnodeScan (§5.2).
        if !pnode_vars.is_empty() {
            let pnode = self.pnode.ok_or_else(|| {
                QueryError::Plan("P-node variables without a P-node context".into())
            })?;
            let mut binds = Vec::new();
            for &v in &pnode_vars {
                let VarSource::Pnode { col } = spec.vars[v].source else {
                    unreachable!()
                };
                binds.push((v, col));
            }
            let filter = RExpr::conjoin(
                pnode_vars
                    .iter()
                    .flat_map(|&v| selections[v].clone())
                    .collect(),
            );
            // also multi-var conjuncts fully inside the pnode unit
            let _ = pnode;
            bound.extend(&pnode_vars);
            let extra = Self::take_applicable(&mut multi, &bound);
            let filter = RExpr::conjoin(filter.into_iter().chain(extra).collect::<Vec<_>>());
            plan = Some(Plan::PnodeScan { binds, filter });
        }

        // Remaining relation variables, greedily.
        let mut remaining: Vec<usize> = rel_vars;
        while !remaining.is_empty() {
            let pick = if plan.is_none() {
                // first unit: cheapest access path
                *remaining
                    .iter()
                    .min_by(|&&a, &&b| {
                        self.estimate(spec, &selections[a], a)
                            .total_cmp(&self.estimate(spec, &selections[b], b))
                    })
                    .unwrap()
            } else {
                // prefer a variable connected to the bound set by an
                // equi-join edge; otherwise cheapest (cartesian).
                let connected: Vec<usize> = remaining
                    .iter()
                    .copied()
                    .filter(|&v| {
                        multi.iter().any(|(vars, c)| {
                            vars.contains(&v)
                                && vars.iter().all(|u| *u == v || bound.contains(u))
                                && Self::equi_edge(c, v, &bound).is_some()
                        })
                    })
                    .collect();
                let pool = if connected.is_empty() {
                    &remaining
                } else {
                    &connected
                };
                *pool
                    .iter()
                    .min_by(|&&a, &&b| {
                        self.estimate(spec, &selections[a], a)
                            .total_cmp(&self.estimate(spec, &selections[b], b))
                    })
                    .unwrap()
            };
            remaining.retain(|&v| v != pick);
            let sels = std::mem::take(&mut selections[pick]);
            plan = Some(match plan {
                None => self.access_path(spec, pick, sels)?,
                Some(left) => {
                    bound.insert(pick);
                    let applicable = Self::take_applicable(&mut multi, &bound);
                    bound.remove(&pick);
                    self.join(spec, left, pick, sels, applicable, &bound)?
                }
            });
            bound.insert(pick);
        }

        let mut plan = plan.expect("at least one variable");
        // Anything left (constant predicates, or conjuncts that only became
        // applicable now) goes in a top filter.
        let leftovers: Vec<RExpr> = multi.into_iter().map(|(_, c)| c).collect();
        if let Some(pred) = RExpr::conjoin(leftovers) {
            plan = Plan::Filter {
                input: Box::new(plan),
                pred,
            };
        }
        Ok(plan)
    }

    /// Pull out the conjuncts whose variables are all bound.
    fn take_applicable(
        multi: &mut Vec<(HashSet<usize>, RExpr)>,
        bound: &HashSet<usize>,
    ) -> Vec<RExpr> {
        let mut out = Vec::new();
        multi.retain(|(vars, c)| {
            if vars.is_subset(bound) {
                out.push(c.clone());
                false
            } else {
                true
            }
        });
        out
    }

    /// If `c` is `newvar.attr = <expr over bound vars>` (either side),
    /// return `(attr_of_newvar, other_side_expr)`.
    fn equi_edge(c: &RExpr, newvar: usize, bound: &HashSet<usize>) -> Option<(usize, RExpr)> {
        let RExpr::Binary {
            op: BinOp::Eq,
            left,
            right,
        } = c
        else {
            return None;
        };
        let over_bound = |e: &RExpr| e.vars_used().iter().all(|u| bound.contains(u));
        if let RExpr::Attr { var, attr } = **left {
            if var == newvar && over_bound(right) {
                return Some((attr, (**right).clone()));
            }
        }
        if let RExpr::Attr { var, attr } = **right {
            if var == newvar && over_bound(left) {
                return Some((attr, (**left).clone()));
            }
        }
        None
    }

    /// Constant-fold an expression with no variable references.
    fn fold_const(e: &RExpr) -> Option<Value> {
        if !e.vars_used().is_empty() {
            return None;
        }
        eval(e, &Row::unbound(0)).ok()
    }

    /// Extract `attr cmp const` sargs from single-variable conjuncts.
    fn extract_sargs(var: usize, sels: &[RExpr]) -> Vec<(usize, Sarg)> {
        let mut out = Vec::new();
        for (i, c) in sels.iter().enumerate() {
            let RExpr::Binary { op, left, right } = c else {
                continue;
            };
            if !op.is_comparison() || *op == BinOp::Ne {
                continue;
            }
            if let RExpr::Attr { var: v, attr } = **left {
                if v == var {
                    if let Some(val) = Self::fold_const(right) {
                        out.push((
                            i,
                            Sarg {
                                attr,
                                op: *op,
                                value: val,
                            },
                        ));
                        continue;
                    }
                }
            }
            if let RExpr::Attr { var: v, attr } = **right {
                if v == var {
                    if let Some(val) = Self::fold_const(left) {
                        out.push((
                            i,
                            Sarg {
                                attr,
                                op: op.flip(),
                                value: val,
                            },
                        ));
                    }
                }
            }
        }
        out
    }

    /// Build the access path for a relation variable.
    fn access_path(&self, spec: &QuerySpec, var: usize, sels: Vec<RExpr>) -> QueryResult<Plan> {
        let rel_name = spec.vars[var].rel.clone();
        let rel = self.catalog.require(&rel_name)?;
        let rel_ref = rel.borrow();
        let sargs = Self::extract_sargs(var, &sels);

        // Equality probe first (most selective).
        for (i, s) in &sargs {
            if s.op != BinOp::Eq {
                continue;
            }
            if rel_ref.index_on(s.attr).is_some() {
                let filter = RExpr::conjoin(
                    sels.iter()
                        .enumerate()
                        .filter(|(j, _)| j != i)
                        .map(|(_, c)| c.clone())
                        .collect(),
                );
                return Ok(Plan::IndexScan {
                    rel: rel_name,
                    var,
                    attr: s.attr,
                    key: IndexKey::Eq(s.value.clone()),
                    filter,
                });
            }
        }
        // Range probe: merge all range sargs on one B-tree-indexed attr.
        for (_, s) in &sargs {
            if s.op == BinOp::Eq {
                continue;
            }
            let Some(ix) = rel_ref.index_on(s.attr) else {
                continue;
            };
            if !ix.supports_range() {
                continue;
            }
            let mut lo: Bound<Value> = Bound::Unbounded;
            let mut hi: Bound<Value> = Bound::Unbounded;
            let mut used = HashSet::new();
            for (j, s2) in &sargs {
                if s2.attr != s.attr {
                    continue;
                }
                match s2.op {
                    BinOp::Gt => {
                        lo = tighten_lo(lo, Bound::Excluded(s2.value.clone()));
                        used.insert(*j);
                    }
                    BinOp::Ge => {
                        lo = tighten_lo(lo, Bound::Included(s2.value.clone()));
                        used.insert(*j);
                    }
                    BinOp::Lt => {
                        hi = tighten_hi(hi, Bound::Excluded(s2.value.clone()));
                        used.insert(*j);
                    }
                    BinOp::Le => {
                        hi = tighten_hi(hi, Bound::Included(s2.value.clone()));
                        used.insert(*j);
                    }
                    _ => {}
                }
            }
            let filter = RExpr::conjoin(
                sels.iter()
                    .enumerate()
                    .filter(|(j, _)| !used.contains(j))
                    .map(|(_, c)| c.clone())
                    .collect(),
            );
            return Ok(Plan::IndexScan {
                rel: rel_name,
                var,
                attr: s.attr,
                key: IndexKey::Range(lo, hi),
                filter,
            });
        }
        Ok(Plan::SeqScan {
            rel: rel_name,
            var,
            filter: RExpr::conjoin(sels),
        })
    }

    /// Join the already-planned `left` with variable `pick`.
    fn join(
        &self,
        spec: &QuerySpec,
        left: Plan,
        pick: usize,
        sels: Vec<RExpr>,
        applicable: Vec<RExpr>,
        bound: &HashSet<usize>,
    ) -> QueryResult<Plan> {
        let rel_name = spec.vars[pick].rel.clone();
        let rel = self.catalog.require(&rel_name)?;

        // Try an index nested-loop: an equi edge probing an index on pick.
        for (i, c) in applicable.iter().enumerate() {
            let Some((attr, key_expr)) = Self::equi_edge(c, pick, bound) else {
                continue;
            };
            if rel.borrow().index_on(attr).is_none() {
                continue;
            }
            let cond = RExpr::conjoin(
                applicable
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != i)
                    .map(|(_, c)| c.clone())
                    .collect(),
            );
            return Ok(Plan::IndexedLoop {
                left: Box::new(left),
                rel: rel_name,
                var: pick,
                attr,
                key_expr,
                filter: RExpr::conjoin(sels),
                cond,
            });
        }

        // Sort-merge when both sides are big and an equi edge exists.
        let left_est = self.plan_estimate(&left, spec);
        let pick_est = self.estimate(spec, &sels, pick);
        if left_est > SORT_MERGE_THRESHOLD && pick_est > SORT_MERGE_THRESHOLD {
            for (i, c) in applicable.iter().enumerate() {
                if let Some((attr, other)) = Self::equi_edge(c, pick, bound) {
                    let residual = RExpr::conjoin(
                        applicable
                            .iter()
                            .enumerate()
                            .filter(|(j, _)| *j != i)
                            .map(|(_, c)| c.clone())
                            .collect(),
                    );
                    let right = self.access_path(spec, pick, sels)?;
                    return Ok(Plan::SortMergeJoin {
                        left: Box::new(left),
                        right: Box::new(right),
                        left_key: other,
                        right_key: RExpr::Attr { var: pick, attr },
                        residual,
                    });
                }
            }
        }

        let right = self.access_path(spec, pick, sels)?;
        Ok(Plan::NestedLoop {
            left: Box::new(left),
            right: Box::new(right),
            cond: RExpr::conjoin(applicable),
        })
    }

    /// Cardinality estimate for one variable after its selections.
    fn estimate(&self, spec: &QuerySpec, sels: &[RExpr], var: usize) -> f64 {
        let base = match &spec.vars[var].source {
            VarSource::Pnode { .. } => self.pnode.map(|p| p.len()).unwrap_or(0) as f64,
            VarSource::Relation => self
                .catalog
                .get(&spec.vars[var].rel)
                .map(|r| r.borrow().len())
                .unwrap_or(0) as f64,
        };
        let sel: f64 = sels
            .iter()
            .map(|c| match c {
                RExpr::Binary { op, .. } if *op == BinOp::Eq => SEL_EQ,
                RExpr::Binary { op, .. } if op.is_comparison() => SEL_RANGE,
                _ => SEL_OTHER,
            })
            .product();
        (base * sel).max(1.0)
    }

    /// Rough output-size estimate of a planned subtree.
    #[allow(clippy::only_used_in_recursion)]
    fn plan_estimate(&self, plan: &Plan, spec: &QuerySpec) -> f64 {
        match plan {
            Plan::SeqScan { rel, filter, .. } => {
                let n = self.catalog.get(rel).map(|r| r.borrow().len()).unwrap_or(0) as f64;
                if filter.is_some() {
                    (n * SEL_RANGE).max(1.0)
                } else {
                    n
                }
            }
            Plan::IndexScan { rel, key, .. } => {
                let n = self.catalog.get(rel).map(|r| r.borrow().len()).unwrap_or(0) as f64;
                match key {
                    IndexKey::Eq(_) => (n * SEL_EQ).max(1.0),
                    IndexKey::Range(..) => (n * SEL_RANGE).max(1.0),
                }
            }
            Plan::PnodeScan { .. } => self.pnode.map(|p| p.len()).unwrap_or(0) as f64,
            Plan::NestedLoop { left, right, cond } => {
                let prod = self.plan_estimate(left, spec) * self.plan_estimate(right, spec);
                if cond.is_some() {
                    (prod * SEL_EQ).max(1.0)
                } else {
                    prod
                }
            }
            Plan::IndexedLoop { left, .. } => (self.plan_estimate(left, spec) * 2.0).max(1.0),
            Plan::SortMergeJoin { left, right, .. } => {
                (self.plan_estimate(left, spec) * self.plan_estimate(right, spec) * SEL_EQ).max(1.0)
            }
            Plan::Filter { input, .. } => (self.plan_estimate(input, spec) * SEL_RANGE).max(1.0),
        }
    }
}

fn tighten_lo(a: Bound<Value>, b: Bound<Value>) -> Bound<Value> {
    match (&a, &b) {
        (Bound::Unbounded, _) => b,
        (_, Bound::Unbounded) => a,
        (Bound::Included(x) | Bound::Excluded(x), Bound::Included(y) | Bound::Excluded(y)) => {
            if y > x || (y == x && matches!(b, Bound::Excluded(_))) {
                b
            } else {
                a
            }
        }
    }
}

fn tighten_hi(a: Bound<Value>, b: Bound<Value>) -> Bound<Value> {
    match (&a, &b) {
        (Bound::Unbounded, _) => b,
        (_, Bound::Unbounded) => a,
        (Bound::Included(x) | Bound::Excluded(x), Bound::Included(y) | Bound::Excluded(y)) => {
            if y < x || (y == x && matches!(b, Bound::Excluded(_))) {
                b
            } else {
                a
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_command;
    use crate::semantic::Resolver;
    use ariel_storage::{AttrType, IndexKind, Schema};

    fn catalog_with_data() -> Catalog {
        let mut c = Catalog::new();
        let emp = c
            .create(
                "emp",
                Schema::of(&[
                    ("name", AttrType::Str),
                    ("sal", AttrType::Float),
                    ("dno", AttrType::Int),
                ]),
            )
            .unwrap();
        let dept = c
            .create(
                "dept",
                Schema::of(&[("dno", AttrType::Int), ("name", AttrType::Str)]),
            )
            .unwrap();
        for i in 0..100 {
            emp.borrow_mut()
                .insert(vec![
                    format!("e{i}").into(),
                    ((i * 100) as f64).into(),
                    ((i % 10) as i64).into(),
                ])
                .unwrap();
        }
        for i in 0..10 {
            dept.borrow_mut()
                .insert(vec![(i as i64).into(), format!("d{i}").into()])
                .unwrap();
        }
        c
    }

    fn plan_for(cat: &Catalog, sql: &str) -> Plan {
        let cmd = parse_command(sql).unwrap();
        let rc = Resolver::new(cat).resolve_command(&cmd).unwrap();
        Optimizer::new(cat).plan(rc.spec()).unwrap()
    }

    #[test]
    fn seq_scan_without_index() {
        let cat = catalog_with_data();
        let p = plan_for(&cat, "delete emp where emp.sal > 100");
        assert_eq!(p.shape(), vec!["SeqScan"]);
    }

    #[test]
    fn index_eq_scan_with_hash_index() {
        let cat = catalog_with_data();
        cat.get("emp")
            .unwrap()
            .borrow_mut()
            .create_index("dno", IndexKind::Hash)
            .unwrap();
        let p = plan_for(&cat, "delete emp where emp.dno = 3");
        assert_eq!(p.shape(), vec!["IndexScan"]);
    }

    #[test]
    fn index_range_scan_with_btree() {
        let cat = catalog_with_data();
        cat.get("emp")
            .unwrap()
            .borrow_mut()
            .create_index("sal", IndexKind::BTree)
            .unwrap();
        let p = plan_for(&cat, "delete emp where emp.sal > 100 and emp.sal <= 500");
        let Plan::IndexScan {
            key: IndexKey::Range(lo, hi),
            ..
        } = &p
        else {
            panic!("expected range index scan, got {p}");
        };
        // literals stay Int; Value's cross-type numeric ordering makes the
        // B-tree probe against Float keys correct
        assert_eq!(*lo, Bound::Excluded(Value::Int(100)));
        assert_eq!(*hi, Bound::Included(Value::Int(500)));
    }

    #[test]
    fn hash_index_not_used_for_range() {
        let cat = catalog_with_data();
        cat.get("emp")
            .unwrap()
            .borrow_mut()
            .create_index("sal", IndexKind::Hash)
            .unwrap();
        let p = plan_for(&cat, "delete emp where emp.sal > 100");
        assert_eq!(p.shape(), vec!["SeqScan"]);
    }

    #[test]
    fn join_prefers_indexed_loop() {
        let cat = catalog_with_data();
        // dept (selective eq filter) is scanned first; emp is probed
        // through its dno index.
        cat.get("emp")
            .unwrap()
            .borrow_mut()
            .create_index("dno", IndexKind::Hash)
            .unwrap();
        let p = plan_for(
            &cat,
            "retrieve (emp.name) where emp.dno = dept.dno and dept.name = \"d3\"",
        );
        assert!(
            p.shape().contains(&"IndexedLoopJoin"),
            "expected indexed loop, got:\n{p}"
        );
    }

    #[test]
    fn join_without_index_is_nested_loop() {
        let cat = catalog_with_data();
        let p = plan_for(
            &cat,
            "retrieve (emp.name) where emp.dno = dept.dno and dept.name = \"d3\"",
        );
        assert!(p.shape().contains(&"NestedLoopJoin"), "got:\n{p}");
        // smaller/filtered relation should come first: dept has the
        // equality filter and only 10 rows.
        let Plan::NestedLoop { left, .. } = &p else {
            panic!("got:\n{p}")
        };
        assert!(matches!(**left, Plan::SeqScan { ref rel, .. } if rel == "dept"));
    }

    #[test]
    fn sort_merge_for_two_large_inputs() {
        let mut cat = Catalog::new();
        for name in ["a", "b"] {
            let r = cat
                .create(name, Schema::of(&[("k", AttrType::Int)]))
                .unwrap();
            for i in 0..200 {
                r.borrow_mut().insert(vec![(i as i64).into()]).unwrap();
            }
        }
        let p = plan_for(&cat, "retrieve (a.k) where a.k = b.k");
        assert!(p.shape().contains(&"SortMergeJoin"), "got:\n{p}");
    }

    #[test]
    fn cartesian_product_when_no_edge() {
        let cat = catalog_with_data();
        let p = plan_for(&cat, "retrieve (emp.name, dept.name)");
        let Plan::NestedLoop { cond, .. } = &p else {
            panic!("got:\n{p}")
        };
        assert!(cond.is_none());
    }

    #[test]
    fn constant_predicate_becomes_filter() {
        let cat = catalog_with_data();
        let p = plan_for(&cat, "retrieve (emp.name) where 1 = 2");
        assert_eq!(p.shape()[0], "Filter");
    }

    #[test]
    fn empty_spec_rejected() {
        let cat = catalog_with_data();
        let spec = QuerySpec {
            vars: vec![],
            qual: None,
        };
        assert!(Optimizer::new(&cat).plan(&spec).is_err());
    }
}

#[cfg(test)]
mod pnode_tests {
    use super::*;
    use crate::binding::{BoundVar, Pnode, PnodeCol};
    use crate::parser::parse_command;
    use crate::semantic::Resolver;
    use ariel_storage::{AttrType, Schema, Tid, Tuple};

    /// §5.2: "the optimizer always generates a PnodeScan to find tuples to
    /// be bound to P" — and our planner places it leftmost.
    #[test]
    fn rule_action_plans_start_with_pnode_scan() {
        let mut cat = Catalog::new();
        let emp = cat
            .create(
                "emp",
                Schema::of(&[("sal", AttrType::Float), ("dno", AttrType::Int)]),
            )
            .unwrap();
        let dept = cat
            .create(
                "dept",
                Schema::of(&[("dno", AttrType::Int), ("name", AttrType::Str)]),
            )
            .unwrap();
        for i in 0..20i64 {
            dept.borrow_mut()
                .insert(vec![i.into(), format!("d{i}").into()])
                .unwrap();
        }
        let mut pnode = Pnode::new(vec![PnodeCol {
            var: "emp".into(),
            rel: "emp".into(),
            schema: emp.borrow().schema().clone(),
            has_prev: false,
        }]);
        pnode.push(vec![BoundVar::plain(
            Tid(0),
            Tuple::new(vec![100.0.into(), 3i64.into()]),
        )]);
        let cmd =
            parse_command(r#"replace emp (sal = 0) where emp.dno = dept.dno and dept.name = "d3""#)
                .unwrap();
        // simulate query modification: emp shared → primed
        let modified = crate::modify::modify_action(
            std::slice::from_ref(&cmd),
            &std::collections::HashSet::from(["emp".to_string()]),
        );
        let rcmd = Resolver::with_pnode(&cat, &pnode)
            .resolve_command(&modified[0])
            .unwrap();
        let plan = Optimizer::with_pnode(&cat, &pnode)
            .plan(rcmd.spec())
            .unwrap();
        let shape = plan.shape();
        // the first scan in pre-order after any join nodes is the PnodeScan
        let first_leaf = shape.iter().find(|n| n.ends_with("Scan")).copied().unwrap();
        assert_eq!(first_leaf, "PnodeScan", "plan:\n{plan}");
    }
}
