//! Abstract syntax for the POSTQUEL subset and the Ariel Rule Language.

use ariel_storage::{AttrType, IndexKind};
use std::fmt;

/// A literal constant.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// Boolean literal (`true` / `false`).
    Bool(bool),
}

/// Binary operators, in the paper's query syntax.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `and`
    And,
    /// `or`
    Or,
}

impl BinOp {
    /// True for the six comparison operators.
    pub fn is_comparison(&self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }

    /// Mirror of a comparison: `a op b` == `b op.flip() a`.
    pub fn flip(&self) -> BinOp {
        match self {
            BinOp::Lt => BinOp::Gt,
            BinOp::Le => BinOp::Ge,
            BinOp::Gt => BinOp::Lt,
            BinOp::Ge => BinOp::Le,
            other => *other,
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Eq => "=",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "and",
            BinOp::Or => "or",
        };
        f.write_str(s)
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// Logical negation (`not`).
    Not,
    /// Arithmetic negation (`-`).
    Neg,
}

/// An (unresolved) expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A constant.
    Literal(Literal),
    /// `var.attr`, or `previous var.attr` when `previous` is set (§2.3).
    Attr {
        /// Tuple-variable name.
        var: String,
        /// Attribute name.
        attr: String,
        /// True for `previous var.attr` (start-of-transition value).
        previous: bool,
    },
    /// `new(var)` — a selection condition that is always true (§2.1).
    New {
        /// Tuple-variable name.
        var: String,
    },
    /// Unary operator application.
    Unary {
        /// The operator.
        op: UnaryOp,
        /// The operand.
        expr: Box<Expr>,
    },
    /// Binary operator application.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
}

impl Expr {
    /// Conjoin two optional predicates.
    pub fn and(a: Option<Expr>, b: Option<Expr>) -> Option<Expr> {
        match (a, b) {
            (Some(a), Some(b)) => Some(Expr::Binary {
                op: BinOp::And,
                left: Box::new(a),
                right: Box::new(b),
            }),
            (Some(a), None) => Some(a),
            (None, b) => b,
        }
    }

    /// Names of all tuple variables referenced (including `previous` and
    /// `new()` references), in first-appearance order.
    pub fn var_names(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut Vec<String>) {
        match self {
            Expr::Literal(_) => {}
            Expr::Attr { var, .. } | Expr::New { var } => {
                if !out.iter().any(|v| v == var) {
                    out.push(var.clone());
                }
            }
            Expr::Unary { expr, .. } => expr.collect_vars(out),
            Expr::Binary { left, right, .. } => {
                left.collect_vars(out);
                right.collect_vars(out);
            }
        }
    }

    /// Whether any sub-expression is a `previous` reference to `var`.
    pub fn has_previous_ref(&self, var: &str) -> bool {
        match self {
            Expr::Attr {
                var: v, previous, ..
            } => *previous && v == var,
            Expr::Unary { expr, .. } => expr.has_previous_ref(var),
            Expr::Binary { left, right, .. } => {
                left.has_previous_ref(var) || right.has_previous_ref(var)
            }
            _ => false,
        }
    }
}

/// `var in relation` entry of a from-list. Relation names double as default
/// tuple variables, so `emp.sal > 10` needs no from-list (§2.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FromItem {
    /// Tuple-variable name.
    pub var: String,
    /// Relation the variable ranges over.
    pub rel: String,
}

/// Result column of a `retrieve`.
#[derive(Debug, Clone, PartialEq)]
pub enum Target {
    /// `name = expr` (name optional in the surface syntax; filled in).
    Expr {
        /// Result column name.
        name: String,
        /// Value expression.
        expr: Expr,
    },
    /// `var.all` — every attribute of the variable.
    All {
        /// Tuple-variable name.
        var: String,
    },
}

/// Event kinds for ON clauses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// `on append [to] rel`.
    Append,
    /// `on delete [from] rel`.
    Delete,
    /// `replace [to] rel [(attrs)]`: an optional target-list restricts the
    /// trigger to updates touching those attributes.
    Replace(Option<Vec<String>>),
}

/// An ON-clause event specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventSpec {
    /// The event kind.
    pub kind: EventKind,
    /// The relation the event watches.
    pub relation: String,
}

/// An ARL rule definition (§2.1):
///
/// ```text
/// define rule rule-name [in ruleset-name] [priority priority-val]
///     [on event] [if condition] then action
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RuleDef {
    /// Unique rule name.
    pub name: String,
    /// Optional ruleset (defaults to `default_rules`).
    pub ruleset: Option<String>,
    /// Optional priority (defaults to 0).
    pub priority: Option<f64>,
    /// Optional ON-clause event.
    pub on: Option<EventSpec>,
    /// The if-clause qualification.
    pub condition: Option<Expr>,
    /// Extra bindings from the condition's from-clause.
    pub cond_from: Vec<FromItem>,
    /// One or more commands (a `do … end` block is flattened here).
    pub action: Vec<Command>,
}

/// A parsed command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `create rel (attr = type, …)`
    CreateRelation {
        /// New relation name.
        name: String,
        /// Attribute definitions.
        attrs: Vec<(String, AttrType)>,
    },
    /// `destroy rel`
    DestroyRelation {
        /// Relation to destroy.
        name: String,
    },
    /// `define index on rel (attr) [using btree|hash]`
    CreateIndex {
        /// Indexed relation.
        rel: String,
        /// Indexed attribute.
        attr: String,
        /// Index structure.
        kind: IndexKind,
    },
    /// `append [to] rel (attr = expr, …) [from …] [where qual]`
    Append {
        /// Target relation.
        target: String,
        /// Attribute assignments; unassigned attributes become null.
        assignments: Vec<(String, Expr)>,
        /// Extra tuple-variable bindings.
        from: Vec<FromItem>,
        /// Qualification.
        qual: Option<Expr>,
    },
    /// `delete var [from …] [where qual]`
    Delete {
        /// Target tuple variable.
        var: String,
        /// Extra tuple-variable bindings.
        from: Vec<FromItem>,
        /// Qualification.
        qual: Option<Expr>,
    },
    /// `replace var (attr = expr, …) [from …] [where qual]`
    Replace {
        /// Target tuple variable.
        var: String,
        /// Attribute assignments.
        assignments: Vec<(String, Expr)>,
        /// Extra tuple-variable bindings.
        from: Vec<FromItem>,
        /// Qualification.
        qual: Option<Expr>,
    },
    /// `retrieve [into rel] (targets) [from …] [where qual]`
    Retrieve {
        /// Destination relation for `retrieve into`.
        into: Option<String>,
        /// Result columns.
        targets: Vec<Target>,
        /// Extra tuple-variable bindings.
        from: Vec<FromItem>,
        /// Qualification.
        qual: Option<Expr>,
    },
    /// `do cmd; cmd; … end` — one transition (§2.2.1).
    Block(Vec<Command>),
    /// `define rule …`
    DefineRule(RuleDef),
    /// `destroy rule name`
    DropRule {
        /// Rule to remove.
        name: String,
    },
    /// `activate rule name`.
    ActivateRule {
        /// Rule to activate.
        name: String,
    },
    /// `deactivate rule name`.
    DeactivateRule {
        /// Rule to deactivate.
        name: String,
    },
    /// `halt` — stop the recognize-act cycle (Fig. 1).
    Halt,
    /// `notify channel (name = expr, …) [from …] [where qual]` — emit an
    /// asynchronous notification instead of writing a relation. This
    /// implements §8's future-work item: "applications that can receive
    /// data from database triggers asynchronously (e.g. safety and
    /// integrity alert monitors, stock tickers)".
    Notify {
        /// Channel name the notification is delivered on.
        channel: String,
        /// Notification columns.
        targets: Vec<Target>,
        /// Extra tuple-variable bindings.
        from: Vec<FromItem>,
        /// Qualification.
        qual: Option<Expr>,
    },
    /// `replace'`: post-query-modification replace whose target tuples are
    /// located through TIDs stored in the P-node (§5.1). `pvar` names the
    /// shared tuple variable (a P-node column).
    ReplacePrimed {
        /// Shared tuple variable (a P-node column).
        pvar: String,
        /// Attribute assignments.
        assignments: Vec<(String, Expr)>,
        /// Extra tuple-variable bindings.
        from: Vec<FromItem>,
        /// Qualification.
        qual: Option<Expr>,
    },
    /// `delete'`: TID-directed delete through the P-node (§5.1).
    DeletePrimed {
        /// Shared tuple variable (a P-node column).
        pvar: String,
        /// Extra tuple-variable bindings.
        from: Vec<FromItem>,
        /// Qualification.
        qual: Option<Expr>,
    },
}

impl Command {
    /// Short command name for error messages and logs.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Command::CreateRelation { .. } => "create",
            Command::DestroyRelation { .. } => "destroy",
            Command::CreateIndex { .. } => "define index",
            Command::Append { .. } => "append",
            Command::Delete { .. } => "delete",
            Command::Replace { .. } => "replace",
            Command::Retrieve { .. } => "retrieve",
            Command::Block(_) => "do-block",
            Command::DefineRule(_) => "define rule",
            Command::DropRule { .. } => "destroy rule",
            Command::ActivateRule { .. } => "activate rule",
            Command::DeactivateRule { .. } => "deactivate rule",
            Command::Halt => "halt",
            Command::Notify { .. } => "notify",
            Command::ReplacePrimed { .. } => "replace'",
            Command::DeletePrimed { .. } => "delete'",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attr(var: &str, attr: &str) -> Expr {
        Expr::Attr {
            var: var.into(),
            attr: attr.into(),
            previous: false,
        }
    }

    #[test]
    fn and_combinator() {
        assert_eq!(Expr::and(None, None), None);
        let a = attr("e", "x");
        assert_eq!(Expr::and(Some(a.clone()), None), Some(a.clone()));
        let combined = Expr::and(Some(a.clone()), Some(a.clone())).unwrap();
        assert!(matches!(combined, Expr::Binary { op: BinOp::And, .. }));
    }

    #[test]
    fn var_names_deduped_in_order() {
        let e = Expr::Binary {
            op: BinOp::And,
            left: Box::new(Expr::Binary {
                op: BinOp::Eq,
                left: Box::new(attr("emp", "dno")),
                right: Box::new(attr("dept", "dno")),
            }),
            right: Box::new(attr("emp", "sal")),
        };
        assert_eq!(e.var_names(), vec!["emp".to_string(), "dept".to_string()]);
    }

    #[test]
    fn previous_ref_detection() {
        let e = Expr::Binary {
            op: BinOp::Gt,
            left: Box::new(attr("emp", "sal")),
            right: Box::new(Expr::Attr {
                var: "emp".into(),
                attr: "sal".into(),
                previous: true,
            }),
        };
        assert!(e.has_previous_ref("emp"));
        assert!(!e.has_previous_ref("dept"));
    }

    #[test]
    fn comparison_flip() {
        assert_eq!(BinOp::Lt.flip(), BinOp::Gt);
        assert_eq!(BinOp::Ge.flip(), BinOp::Le);
        assert_eq!(BinOp::Eq.flip(), BinOp::Eq);
        assert!(BinOp::Le.is_comparison());
        assert!(!BinOp::Add.is_comparison());
    }
}
