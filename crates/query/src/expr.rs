//! Evaluation of resolved expressions.
//!
//! Null handling: `Null` propagates through arithmetic; comparisons
//! involving `Null` are false; `and`/`or` treat `Null` as false. This is a
//! deliberate two-valued simplification of SQL's three-valued logic — the
//! paper's language predates SQL NULL subtleties and its examples never rely
//! on them.

use crate::ast::{BinOp, UnaryOp};
use crate::binding::Row;
use crate::error::{QueryError, QueryResult};
use crate::semantic::RExpr;
use ariel_storage::{Tuple, Value};
use std::cmp::Ordering;

/// How an expression reads variable bindings during evaluation.
pub trait Env {
    /// Current tuple bound to variable `var`.
    fn current(&self, var: usize) -> QueryResult<&Tuple>;
    /// Previous (start-of-transition) tuple bound to `var`, if tracked.
    fn previous(&self, var: usize) -> QueryResult<&Tuple>;
}

impl Env for Row {
    fn current(&self, var: usize) -> QueryResult<&Tuple> {
        self.bound(var)
            .map(|b| &b.tuple)
            .ok_or_else(|| QueryError::Eval(format!("variable #{var} is unbound")))
    }

    fn previous(&self, var: usize) -> QueryResult<&Tuple> {
        let b = self
            .bound(var)
            .ok_or_else(|| QueryError::Eval(format!("variable #{var} is unbound")))?;
        b.prev
            .as_ref()
            .ok_or_else(|| QueryError::Eval(format!("variable #{var} has no previous value")))
    }
}

/// Environment over a single tuple: every variable index resolves to the
/// same `(tuple, prev)` pair. Used by the discrimination network to test
/// single-relation selection predicates against in-flight tokens.
pub struct SingleEnv<'a> {
    /// Current tuple value.
    pub tuple: &'a Tuple,
    /// Start-of-transition value, if available.
    pub prev: Option<&'a Tuple>,
}

impl Env for SingleEnv<'_> {
    fn current(&self, _var: usize) -> QueryResult<&Tuple> {
        Ok(self.tuple)
    }

    fn previous(&self, _var: usize) -> QueryResult<&Tuple> {
        self.prev
            .ok_or_else(|| QueryError::Eval("no previous value available".into()))
    }
}

/// Environment layering one *borrowed* candidate binding over a base
/// [`Row`]: variable `var` resolves to `(tuple, prev)`, every other
/// variable falls through to the base row. The discrimination network's
/// streaming join uses this to test join conjuncts against each candidate
/// *before* committing it to the row, so losing candidates are never
/// cloned.
pub struct PatchedEnv<'a> {
    /// Partially-bound row providing every other variable.
    pub base: &'a Row,
    /// Variable index the overlay binds.
    pub var: usize,
    /// Candidate tuple for `var`.
    pub tuple: &'a Tuple,
    /// Candidate's start-of-transition value, if any.
    pub prev: Option<&'a Tuple>,
}

impl Env for PatchedEnv<'_> {
    fn current(&self, var: usize) -> QueryResult<&Tuple> {
        if var == self.var {
            Ok(self.tuple)
        } else {
            self.base.current(var)
        }
    }

    fn previous(&self, var: usize) -> QueryResult<&Tuple> {
        if var == self.var {
            self.prev
                .ok_or_else(|| QueryError::Eval(format!("variable #{var} has no previous value")))
        } else {
            self.base.previous(var)
        }
    }
}

/// Evaluate an expression to a value.
pub fn eval(e: &RExpr, env: &dyn Env) -> QueryResult<Value> {
    match e {
        RExpr::Const(v) => Ok(v.clone()),
        RExpr::AlwaysTrue => Ok(Value::Bool(true)),
        RExpr::Attr { var, attr } => Ok(env.current(*var)?.get(*attr).clone()),
        RExpr::Prev { var, attr } => Ok(env.previous(*var)?.get(*attr).clone()),
        RExpr::Unary { op, expr } => {
            let v = eval(expr, env)?;
            match op {
                UnaryOp::Not => Ok(Value::Bool(!truthy(&v))),
                UnaryOp::Neg => match v {
                    Value::Int(i) => Ok(Value::Int(-i)),
                    Value::Float(f) => Ok(Value::Float(-f)),
                    Value::Null => Ok(Value::Null),
                    other => Err(QueryError::Eval(format!(
                        "cannot negate {}",
                        other.type_name()
                    ))),
                },
            }
        }
        RExpr::Binary { op, left, right } => {
            // short-circuit logical operators
            match op {
                BinOp::And => {
                    if !truthy(&eval(left, env)?) {
                        return Ok(Value::Bool(false));
                    }
                    return Ok(Value::Bool(truthy(&eval(right, env)?)));
                }
                BinOp::Or => {
                    if truthy(&eval(left, env)?) {
                        return Ok(Value::Bool(true));
                    }
                    return Ok(Value::Bool(truthy(&eval(right, env)?)));
                }
                _ => {}
            }
            let l = eval(left, env)?;
            let r = eval(right, env)?;
            match op {
                BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => arith(*op, l, r),
                BinOp::Eq => Ok(Value::Bool(l.sql_eq(&r))),
                BinOp::Ne => Ok(Value::Bool(!l.is_null() && !r.is_null() && !l.sql_eq(&r))),
                BinOp::Lt => cmp(l, r, |o| o == Ordering::Less),
                BinOp::Le => cmp(l, r, |o| o != Ordering::Greater),
                BinOp::Gt => cmp(l, r, |o| o == Ordering::Greater),
                BinOp::Ge => cmp(l, r, |o| o != Ordering::Less),
                BinOp::And | BinOp::Or => unreachable!("handled above"),
            }
        }
    }
}

/// Evaluate a predicate: `Null` and non-boolean falsy values are false.
pub fn eval_pred(e: &RExpr, env: &dyn Env) -> QueryResult<bool> {
    Ok(truthy(&eval(e, env)?))
}

/// Predicate truthiness: only `Bool(true)` is true.
fn truthy(v: &Value) -> bool {
    matches!(v, Value::Bool(true))
}

fn cmp(l: Value, r: Value, f: impl Fn(Ordering) -> bool) -> QueryResult<Value> {
    if l.is_null() || r.is_null() {
        return Ok(Value::Bool(false));
    }
    Ok(Value::Bool(f(l.total_cmp(&r))))
}

fn arith(op: BinOp, l: Value, r: Value) -> QueryResult<Value> {
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    match (&l, &r) {
        (Value::Int(a), Value::Int(b)) => {
            let a = *a;
            let b = *b;
            match op {
                BinOp::Add => Ok(Value::Int(a.wrapping_add(b))),
                BinOp::Sub => Ok(Value::Int(a.wrapping_sub(b))),
                BinOp::Mul => Ok(Value::Int(a.wrapping_mul(b))),
                BinOp::Div => {
                    if b == 0 {
                        Err(QueryError::Eval("integer division by zero".into()))
                    } else {
                        Ok(Value::Int(a / b))
                    }
                }
                _ => unreachable!(),
            }
        }
        _ => {
            let (Some(a), Some(b)) = (l.as_f64(), r.as_f64()) else {
                return Err(QueryError::Eval(format!(
                    "arithmetic on {} and {}",
                    l.type_name(),
                    r.type_name()
                )));
            };
            let x = match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Div => a / b,
                _ => unreachable!(),
            };
            Ok(Value::Float(x))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binding::BoundVar;
    use ariel_storage::Tid;

    fn env_one(vals: Vec<Value>, prev: Option<Vec<Value>>) -> Row {
        let tuple = Tuple::new(vals);
        let bv = match prev {
            Some(p) => BoundVar::with_prev(Some(Tid(0)), tuple, Tuple::new(p)),
            None => BoundVar::plain(Tid(0), tuple),
        };
        Row {
            slots: vec![Some(bv)],
        }
    }

    fn attr(a: usize) -> RExpr {
        RExpr::Attr { var: 0, attr: a }
    }

    fn lit(v: impl Into<Value>) -> RExpr {
        RExpr::Const(v.into())
    }

    fn bin(op: BinOp, l: RExpr, r: RExpr) -> RExpr {
        RExpr::Binary {
            op,
            left: Box::new(l),
            right: Box::new(r),
        }
    }

    #[test]
    fn arithmetic_int_and_float() {
        let row = env_one(vec![Value::Int(10), Value::Float(2.5)], None);
        assert_eq!(
            eval(&bin(BinOp::Add, attr(0), lit(5i64)), &row).unwrap(),
            Value::Int(15)
        );
        assert_eq!(
            eval(&bin(BinOp::Mul, attr(0), attr(1)), &row).unwrap(),
            Value::Float(25.0)
        );
        assert_eq!(
            eval(&bin(BinOp::Div, lit(7i64), lit(2i64)), &row).unwrap(),
            Value::Int(3)
        );
    }

    #[test]
    fn division_by_zero_errors() {
        let row = env_one(vec![], None);
        assert!(eval(&bin(BinOp::Div, lit(1i64), lit(0i64)), &row).is_err());
        // float division by zero yields inf, not an error
        assert_eq!(
            eval(&bin(BinOp::Div, lit(1.0), lit(0.0)), &row).unwrap(),
            Value::Float(f64::INFINITY)
        );
    }

    #[test]
    fn comparisons() {
        let row = env_one(vec![Value::Int(10)], None);
        assert!(eval_pred(&bin(BinOp::Gt, attr(0), lit(5i64)), &row).unwrap());
        assert!(eval_pred(&bin(BinOp::Le, attr(0), lit(10i64)), &row).unwrap());
        assert!(!eval_pred(&bin(BinOp::Ne, attr(0), lit(10i64)), &row).unwrap());
        assert!(eval_pred(&bin(BinOp::Eq, lit("a"), lit("a")), &row).unwrap());
    }

    #[test]
    fn null_comparisons_false_null_arith_propagates() {
        let row = env_one(vec![Value::Null], None);
        assert!(!eval_pred(&bin(BinOp::Eq, attr(0), lit(1i64)), &row).unwrap());
        assert!(!eval_pred(&bin(BinOp::Ne, attr(0), lit(1i64)), &row).unwrap());
        assert!(!eval_pred(&bin(BinOp::Lt, attr(0), lit(1i64)), &row).unwrap());
        assert_eq!(
            eval(&bin(BinOp::Add, attr(0), lit(1i64)), &row).unwrap(),
            Value::Null
        );
    }

    #[test]
    fn logical_short_circuit() {
        let row = env_one(vec![Value::Int(1)], None);
        // right side would error (div by zero) but is never evaluated
        let e = bin(
            BinOp::And,
            bin(BinOp::Eq, attr(0), lit(2i64)),
            bin(BinOp::Eq, bin(BinOp::Div, lit(1i64), lit(0i64)), lit(1i64)),
        );
        assert!(!eval_pred(&e, &row).unwrap());
        let e = bin(
            BinOp::Or,
            bin(BinOp::Eq, attr(0), lit(1i64)),
            bin(BinOp::Eq, bin(BinOp::Div, lit(1i64), lit(0i64)), lit(1i64)),
        );
        assert!(eval_pred(&e, &row).unwrap());
    }

    #[test]
    fn previous_references() {
        let row = env_one(vec![Value::Float(110.0)], Some(vec![Value::Float(100.0)]));
        // emp.sal > 1.05 * previous emp.sal
        let e = bin(
            BinOp::Gt,
            attr(0),
            bin(BinOp::Mul, lit(1.05), RExpr::Prev { var: 0, attr: 0 }),
        );
        assert!(eval_pred(&e, &row).unwrap());
    }

    #[test]
    fn previous_without_history_errors() {
        let row = env_one(vec![Value::Int(1)], None);
        assert!(eval(&RExpr::Prev { var: 0, attr: 0 }, &row).is_err());
    }

    #[test]
    fn unbound_variable_errors() {
        let row = Row::unbound(2);
        assert!(eval(&attr(0), &row).is_err());
    }

    #[test]
    fn single_env() {
        let t = Tuple::new(vec![Value::Int(42)]);
        let p = Tuple::new(vec![Value::Int(41)]);
        let env = SingleEnv {
            tuple: &t,
            prev: Some(&p),
        };
        assert_eq!(eval(&attr(0), &env).unwrap(), Value::Int(42));
        assert_eq!(
            eval(&RExpr::Prev { var: 7, attr: 0 }, &env).unwrap(),
            Value::Int(41)
        );
        let env2 = SingleEnv {
            tuple: &t,
            prev: None,
        };
        assert!(eval(&RExpr::Prev { var: 0, attr: 0 }, &env2).is_err());
    }

    #[test]
    fn not_and_neg() {
        let row = env_one(vec![Value::Int(5)], None);
        let e = RExpr::Unary {
            op: UnaryOp::Not,
            expr: Box::new(bin(BinOp::Gt, attr(0), lit(10i64))),
        };
        assert!(eval_pred(&e, &row).unwrap());
        let e = RExpr::Unary {
            op: UnaryOp::Neg,
            expr: Box::new(attr(0)),
        };
        assert_eq!(eval(&e, &row).unwrap(), Value::Int(-5));
        let e = RExpr::Unary {
            op: UnaryOp::Neg,
            expr: Box::new(lit("s")),
        };
        assert!(eval(&e, &row).is_err());
    }

    #[test]
    fn always_true() {
        let row = Row::unbound(0);
        assert!(eval_pred(&RExpr::AlwaysTrue, &row).unwrap());
    }
}
