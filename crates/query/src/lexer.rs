//! Lexer for the POSTQUEL subset + ARL rule language.
//!
//! Keywords follow the paper's examples: `define rule … on … if … then`,
//! `append to`, `replace`, `delete`, `retrieve`, `do … end`, `previous`,
//! `new`, `from`, `where`, `in`, `priority`, plus DDL (`create`, `destroy`,
//! `index`, `using`). Identifiers are case-insensitive for keywords but
//! preserved verbatim otherwise.

use crate::error::{QueryError, QueryResult};
use std::fmt;

/// A lexical token with its source byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token kind.
    pub kind: TokenKind,
    /// Byte offset in the source text.
    pub pos: usize,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (quotes stripped).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `;`
    Semicolon,
    /// `=`
    Eq,
    /// `!=` or `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    StarTok,
    /// `/`
    Slash,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "`{s}`"),
            TokenKind::Int(i) => write!(f, "{i}"),
            TokenKind::Float(x) => write!(f, "{x}"),
            TokenKind::Str(s) => write!(f, "\"{s}\""),
            TokenKind::LParen => write!(f, "("),
            TokenKind::RParen => write!(f, ")"),
            TokenKind::Comma => write!(f, ","),
            TokenKind::Dot => write!(f, "."),
            TokenKind::Semicolon => write!(f, ";"),
            TokenKind::Eq => write!(f, "="),
            TokenKind::Ne => write!(f, "!="),
            TokenKind::Lt => write!(f, "<"),
            TokenKind::Le => write!(f, "<="),
            TokenKind::Gt => write!(f, ">"),
            TokenKind::Ge => write!(f, ">="),
            TokenKind::Plus => write!(f, "+"),
            TokenKind::Minus => write!(f, "-"),
            TokenKind::StarTok => write!(f, "*"),
            TokenKind::Slash => write!(f, "/"),
            TokenKind::Eof => write!(f, "<eof>"),
        }
    }
}

/// Tokenize a command string.
pub fn lex(src: &str) -> QueryResult<Vec<Token>> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let pos = i;
        match c {
            c if c.is_whitespace() => {
                i += 1;
            }
            '#' => {
                // comment to end of line
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                out.push(Token {
                    kind: TokenKind::LParen,
                    pos,
                });
                i += 1;
            }
            ')' => {
                out.push(Token {
                    kind: TokenKind::RParen,
                    pos,
                });
                i += 1;
            }
            ',' => {
                out.push(Token {
                    kind: TokenKind::Comma,
                    pos,
                });
                i += 1;
            }
            '.' => {
                out.push(Token {
                    kind: TokenKind::Dot,
                    pos,
                });
                i += 1;
            }
            ';' => {
                out.push(Token {
                    kind: TokenKind::Semicolon,
                    pos,
                });
                i += 1;
            }
            '=' => {
                out.push(Token {
                    kind: TokenKind::Eq,
                    pos,
                });
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token {
                        kind: TokenKind::Ne,
                        pos,
                    });
                    i += 2;
                } else {
                    return Err(QueryError::Lex {
                        pos,
                        msg: "expected `=` after `!`".into(),
                    });
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token {
                        kind: TokenKind::Le,
                        pos,
                    });
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    out.push(Token {
                        kind: TokenKind::Ne,
                        pos,
                    });
                    i += 2;
                } else {
                    out.push(Token {
                        kind: TokenKind::Lt,
                        pos,
                    });
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token {
                        kind: TokenKind::Ge,
                        pos,
                    });
                    i += 2;
                } else {
                    out.push(Token {
                        kind: TokenKind::Gt,
                        pos,
                    });
                    i += 1;
                }
            }
            '+' => {
                out.push(Token {
                    kind: TokenKind::Plus,
                    pos,
                });
                i += 1;
            }
            '-' => {
                out.push(Token {
                    kind: TokenKind::Minus,
                    pos,
                });
                i += 1;
            }
            '*' => {
                out.push(Token {
                    kind: TokenKind::StarTok,
                    pos,
                });
                i += 1;
            }
            '/' => {
                out.push(Token {
                    kind: TokenKind::Slash,
                    pos,
                });
                i += 1;
            }
            '"' | '\'' => {
                let quote = bytes[i];
                i += 1;
                // escape sequences (`\"`, `\'`, `\\`, `\n`, `\t`) are
                // decoded here and re-encoded by the display layer, so
                // command texts round-trip through the WAL (see
                // `docs/DURABILITY.md`). Runs without a backslash are
                // copied as whole slices to keep UTF-8 validation cheap.
                let mut s = String::new();
                let mut run = i;
                loop {
                    if i >= bytes.len() {
                        return Err(QueryError::Lex {
                            pos,
                            msg: "unterminated string literal".into(),
                        });
                    }
                    if bytes[i] == quote || bytes[i] == b'\\' {
                        s.push_str(std::str::from_utf8(&bytes[run..i]).map_err(|_| {
                            QueryError::Lex {
                                pos,
                                msg: "invalid utf-8 in string literal".into(),
                            }
                        })?);
                        if bytes[i] == quote {
                            break;
                        }
                        let esc_pos = i;
                        s.push(match bytes.get(i + 1) {
                            Some(b'\\') => '\\',
                            Some(b'"') => '"',
                            Some(b'\'') => '\'',
                            Some(b'n') => '\n',
                            Some(b't') => '\t',
                            Some(&other) => {
                                return Err(QueryError::Lex {
                                    pos: esc_pos,
                                    msg: if other.is_ascii() && !other.is_ascii_control() {
                                        format!("unknown escape `\\{}`", other as char)
                                    } else {
                                        format!("unknown escape `\\x{other:02x}`")
                                    },
                                });
                            }
                            None => {
                                return Err(QueryError::Lex {
                                    pos,
                                    msg: "unterminated string literal".into(),
                                });
                            }
                        });
                        i += 2;
                        run = i;
                    } else {
                        i += 1;
                    }
                }
                out.push(Token {
                    kind: TokenKind::Str(s),
                    pos,
                });
                i += 1; // closing quote
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                // fractional part: `.` followed by a digit (so `5.attr` lexes
                // as Int Dot Ident, not a malformed float)
                if i + 1 < bytes.len()
                    && bytes[i] == b'.'
                    && (bytes[i + 1] as char).is_ascii_digit()
                {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                }
                // exponent
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    let mut j = i + 1;
                    if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                        j += 1;
                    }
                    if j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
                        is_float = true;
                        i = j;
                        while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                let text = std::str::from_utf8(&bytes[start..i]).unwrap();
                let kind = if is_float {
                    TokenKind::Float(text.parse().map_err(|_| QueryError::Lex {
                        pos,
                        msg: format!("bad float literal `{text}`"),
                    })?)
                } else {
                    TokenKind::Int(text.parse().map_err(|_| QueryError::Lex {
                        pos,
                        msg: format!("bad integer literal `{text}`"),
                    })?)
                };
                out.push(Token { kind, pos });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let word = std::str::from_utf8(&bytes[start..i]).unwrap().to_string();
                out.push(Token {
                    kind: TokenKind::Ident(word),
                    pos,
                });
            }
            other => {
                // non-ASCII bytes outside string literals are rejected with
                // a structured error (never sliced mid-character)
                return Err(QueryError::Lex {
                    pos,
                    msg: if other.is_ascii() {
                        format!("unexpected character `{other}`")
                    } else {
                        format!("unexpected non-ascii byte 0x{:02x}", other as u32 as u8)
                    },
                });
            }
        }
    }
    out.push(Token {
        kind: TokenKind::Eof,
        pos: bytes.len(),
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn punctuation_and_operators() {
        assert_eq!(
            kinds("( ) , . ; = != < <= > >= + - * / <>"),
            vec![
                TokenKind::LParen,
                TokenKind::RParen,
                TokenKind::Comma,
                TokenKind::Dot,
                TokenKind::Semicolon,
                TokenKind::Eq,
                TokenKind::Ne,
                TokenKind::Lt,
                TokenKind::Le,
                TokenKind::Gt,
                TokenKind::Ge,
                TokenKind::Plus,
                TokenKind::Minus,
                TokenKind::StarTok,
                TokenKind::Slash,
                TokenKind::Ne,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("42 1.5 2e3 1.5e-2"),
            vec![
                TokenKind::Int(42),
                TokenKind::Float(1.5),
                TokenKind::Float(2000.0),
                TokenKind::Float(0.015),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn dotted_attr_not_a_float() {
        assert_eq!(
            kinds("emp.sal"),
            vec![
                TokenKind::Ident("emp".into()),
                TokenKind::Dot,
                TokenKind::Ident("sal".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn strings_both_quotes() {
        assert_eq!(
            kinds(r#""Bob" 'Toy'"#),
            vec![
                TokenKind::Str("Bob".into()),
                TokenKind::Str("Toy".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(matches!(lex("\"oops"), Err(QueryError::Lex { .. })));
        // a trailing backslash can't hide the missing close quote
        assert!(matches!(lex("\"oops\\"), Err(QueryError::Lex { .. })));
        assert!(matches!(lex("\"oops\\\""), Err(QueryError::Lex { .. })));
    }

    #[test]
    fn string_escapes_decode() {
        assert_eq!(
            kinds(r#""a\"b" "c\\d" "e\nf" "g\th" 'i\'j'"#),
            vec![
                TokenKind::Str("a\"b".into()),
                TokenKind::Str("c\\d".into()),
                TokenKind::Str("e\nf".into()),
                TokenKind::Str("g\th".into()),
                TokenKind::Str("i'j".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn unknown_escape_is_a_structured_error() {
        let err = lex(r#""a\qb""#).unwrap_err();
        match err {
            QueryError::Lex { pos, msg } => {
                assert_eq!(pos, 2, "error points at the backslash");
                assert!(msg.contains("\\q"), "{msg}");
            }
            other => panic!("expected Lex error, got {other:?}"),
        }
    }

    #[test]
    fn escaped_quote_of_the_other_kind_is_literal() {
        // inside a double-quoted string, `\'` decodes to a plain quote
        assert_eq!(
            kinds(r#""a\'b""#),
            vec![TokenKind::Str("a'b".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            kinds("a # comment\n b"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn bang_without_eq_errors() {
        assert!(matches!(lex("!x"), Err(QueryError::Lex { .. })));
    }

    #[test]
    fn unexpected_char_errors() {
        assert!(matches!(lex("@"), Err(QueryError::Lex { .. })));
    }

    #[test]
    fn unicode_inside_string_literals_ok() {
        let toks = lex("\"héllo wörld 你好\"").unwrap();
        assert_eq!(toks[0].kind, TokenKind::Str("héllo wörld 你好".into()));
    }

    #[test]
    fn unicode_outside_strings_is_a_structured_error() {
        // never panics, never slices mid-character
        assert!(matches!(lex("héllo"), Err(QueryError::Lex { .. })));
        assert!(matches!(lex("你好"), Err(QueryError::Lex { .. })));
    }

    #[test]
    fn rule_snippet_lexes() {
        let toks = kinds("define rule NoBobs on append emp if emp.name = \"Bob\" then delete emp");
        assert_eq!(toks.len(), 16);
        assert_eq!(toks[0], TokenKind::Ident("define".into()));
    }
}
