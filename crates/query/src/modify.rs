//! Query modification for rule actions (§5.1).
//!
//! When a rule is activated, the binding between its condition and action is
//! made explicit: for every tuple variable `V` shared between condition and
//! action, action references to `V` range over the rule's P-node, and
//! `replace V` / `delete V` commands become the primed forms `replace'` /
//! `delete'`, which locate their target tuples through the TIDs stored in
//! the P-node instead of scanning the target relation.
//!
//! In the paper the rewrite is textual (`V.attr` → `P.V.attr`); here the
//! same binding is achieved structurally — the command is marked primed, and
//! the rule-action resolver ([`crate::semantic::Resolver::with_pnode`])
//! resolves shared variable names directly against P-node columns, which
//! shadow same-named base relations inside the action.

use crate::ast::Command;
use std::collections::HashSet;

/// Rewrite a rule action for execution against a P-node whose columns bind
/// the `shared` variables (the tuple variables of the rule condition).
pub fn modify_action(action: &[Command], shared: &HashSet<String>) -> Vec<Command> {
    action.iter().map(|c| modify_command(c, shared)).collect()
}

fn modify_command(cmd: &Command, shared: &HashSet<String>) -> Command {
    match cmd {
        Command::Replace {
            var,
            assignments,
            from,
            qual,
        } if shared.contains(var) => Command::ReplacePrimed {
            pvar: var.clone(),
            assignments: assignments.clone(),
            from: from.clone(),
            qual: qual.clone(),
        },
        Command::Delete { var, from, qual } if shared.contains(var) => Command::DeletePrimed {
            pvar: var.clone(),
            from: from.clone(),
            qual: qual.clone(),
        },
        Command::Block(cmds) => {
            Command::Block(cmds.iter().map(|c| modify_command(c, shared)).collect())
        }
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_command;

    fn shared(names: &[&str]) -> HashSet<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn salesclerkrule2_modification_matches_fig7() {
        // Fig. 6 → Fig. 7 of the paper: emp is shared, dept is not.
        let action = vec![
            parse_command("append to salarywatch(name = emp.name)").unwrap(),
            parse_command(
                "replace emp (sal = 30000) where emp.dno = dept.dno and dept.name = \"Sales\"",
            )
            .unwrap(),
            parse_command(
                "replace emp (sal = 25000) where emp.dno = dept.dno and dept.name != \"Sales\"",
            )
            .unwrap(),
        ];
        let modified = modify_action(&action, &shared(&["emp"]));
        // append unchanged
        assert!(matches!(modified[0], Command::Append { .. }));
        // replaces primed
        assert!(matches!(&modified[1], Command::ReplacePrimed { pvar, .. } if pvar == "emp"));
        assert!(matches!(&modified[2], Command::ReplacePrimed { pvar, .. } if pvar == "emp"));
        // the dept variable in the qualification is untouched
        let Command::ReplacePrimed { qual: Some(q), .. } = &modified[1] else {
            panic!()
        };
        assert!(q.var_names().contains(&"dept".to_string()));
    }

    #[test]
    fn nobobs_delete_becomes_primed() {
        let action = vec![parse_command("delete emp").unwrap()];
        let modified = modify_action(&action, &shared(&["emp"]));
        assert!(matches!(&modified[0], Command::DeletePrimed { pvar, .. } if pvar == "emp"));
    }

    #[test]
    fn unshared_targets_untouched() {
        let action = vec![
            parse_command("delete log").unwrap(),
            parse_command("replace audit (n = 1)").unwrap(),
        ];
        let modified = modify_action(&action, &shared(&["emp"]));
        assert!(matches!(modified[0], Command::Delete { .. }));
        assert!(matches!(modified[1], Command::Replace { .. }));
    }

    #[test]
    fn halt_passes_through() {
        let action = vec![Command::Halt];
        let modified = modify_action(&action, &shared(&["emp"]));
        assert_eq!(modified, vec![Command::Halt]);
    }
}
