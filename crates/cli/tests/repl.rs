//! Drive the shipped `ariel-repl` binary end to end through stdin/stdout
//! (and, for `serve`, over TCP).

use std::io::Write;
use std::process::{Command, Stdio};

fn run_repl(input: &str) -> String {
    let mut child = Command::new(env!("CARGO_BIN_EXE_ariel-repl"))
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn ariel shell");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(input.as_bytes())
        .unwrap();
    let out = child.wait_with_output().expect("shell exits");
    assert!(out.status.success());
    String::from_utf8(out.stdout).expect("utf8 output")
}

#[test]
fn repl_session_end_to_end() {
    let out = run_repl(
        "create t (x = int, name = string)\n\
         append t (x = 1, name = \"one\")\n\
         retrieve (t.all)\n\
         \\d\n\
         \\q\n",
    );
    assert!(out.contains("(1 change(s))"), "{out}");
    assert!(out.contains("| one"), "{out}");
    assert!(out.contains("t (x int, name string)"), "{out}");
}

#[test]
fn repl_multiline_block_buffering() {
    let out = run_repl(
        "create t (x = int)\n\
         do\n\
         append t (x = 1)\n\
         append t (x = 2)\n\
         end\n\
         retrieve (t.x)\n\
         \\q\n",
    );
    assert!(out.contains("(2 change(s))"), "{out}");
    assert!(out.contains("(2 rows)"), "{out}");
}

#[test]
fn repl_rules_and_notifications() {
    let out = run_repl(
        "create t (x = int)\n\
         define rule w on append t then notify chan (x = t.x)\n\
         append t (x = 7)\n\
         \\rules\n\
         \\q\n",
    );
    assert!(out.contains("notification on `chan`"), "{out}");
    assert!(out.contains("[active] w"), "{out}");
}

#[test]
fn repl_reports_errors_and_recovers() {
    let out = run_repl(
        "retrieve (no.x)\n\
         create t (x = int)\n\
         retrieve (t.x)\n\
         \\q\n",
    );
    assert!(out.contains("error:"), "{out}");
    assert!(out.contains("(0 rows)"), "{out}");
}

#[test]
fn script_mode_runs_file_and_exits() {
    let dir = std::env::temp_dir().join("ariel_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("script.arl");
    std::fs::write(
        &path,
        "create t (x = int)\nappend t (x = 5)\nretrieve (t.x)\n",
    )
    .unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_ariel-repl"))
        .arg(path.to_str().unwrap())
        .output()
        .expect("run script");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("| 5"), "{text}");
}

#[test]
fn repl_metrics_prom_and_slowlog() {
    let out = run_repl(
        "create t (x = int)\n\
         append t (x = 1)\n\
         \\metrics prom\n\
         \\slowlog\n\
         \\q\n",
    );
    assert!(
        out.contains("# TYPE ariel_engine_transitions_total counter"),
        "{out}"
    );
    assert!(out.contains("ariel_engine_transitions_total 1"), "{out}");
    assert!(out.contains("slowest statement(s) this session"), "{out}");
    assert!(out.contains("append t (x = 1)"), "{out}");
}

#[test]
fn serve_subcommand_end_to_end() {
    use ariel_server::Client;
    use std::io::BufRead;

    let mut child = Command::new(env!("CARGO_BIN_EXE_ariel-repl"))
        .args(["serve", "127.0.0.1:0"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn ariel-repl serve");
    let mut lines = std::io::BufReader::new(child.stdout.take().unwrap()).lines();
    let banner = lines.next().unwrap().unwrap();
    let addr = banner
        .strip_prefix("serving on ")
        .unwrap_or_else(|| panic!("unexpected banner: {banner}"))
        .to_string();

    let mut c = Client::connect(addr.as_str()).unwrap();
    c.command("create t (x = int)").unwrap();
    c.command("append t (x = 1)\nappend t (x = 2)").unwrap();
    assert_eq!(c.query("retrieve (t.all)").unwrap().table.rows.len(), 2);
    c.shutdown().unwrap();

    let status = child.wait().expect("server process exits");
    assert!(status.success());
    let summary = lines.next().unwrap().unwrap();
    assert!(summary.starts_with("server stopped:"), "{summary}");
}

#[test]
fn serve_subcommand_log_file_and_http_metrics() {
    use ariel_server::Client;
    use std::io::{BufRead, Read as _};

    let log_path = std::env::temp_dir().join(format!("ariel_serve_log_{}.log", std::process::id()));
    let _ = std::fs::remove_file(&log_path);
    let mut child = Command::new(env!("CARGO_BIN_EXE_ariel-repl"))
        .args([
            "serve",
            "127.0.0.1:0",
            "--log-level",
            "info",
            "--log-file",
            log_path.to_str().unwrap(),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn ariel-repl serve");
    let mut lines = std::io::BufReader::new(child.stdout.take().unwrap()).lines();
    let banner = lines.next().unwrap().unwrap();
    let addr = banner.strip_prefix("serving on ").unwrap().to_string();

    let mut c = Client::connect(addr.as_str()).unwrap();
    c.command("create t (x = int)").unwrap();
    c.command("append t (x = 1)").unwrap();

    // the curl path: plain HTTP GET against the same listener
    let mut s = std::net::TcpStream::connect(addr.as_str()).unwrap();
    std::io::Write::write_all(&mut s, b"GET /metrics HTTP/1.0\r\n\r\n").unwrap();
    let mut response = String::new();
    s.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.0 200 OK"), "{response}");
    assert!(
        response.contains("ariel_server_commands_total 2"),
        "{response}"
    );

    c.shutdown().unwrap();
    assert!(child.wait().unwrap().success());

    let log = std::fs::read_to_string(&log_path).unwrap();
    let _ = std::fs::remove_file(&log_path);
    assert!(log.contains("event=connect"), "{log}");
    assert!(log.contains("event=http_metrics"), "{log}");
    assert!(log.contains("event=shutdown"), "{log}");
    assert!(log.contains("level=info"), "{log}");
    for line in log.lines() {
        assert!(line.starts_with("ts="), "key=value shape: {line}");
    }
}

#[test]
fn serve_meta_verb_round_trips_engine_state() {
    use ariel_server::Client;
    use std::io::BufRead;

    // REPL → \serve → client appends → shutdown → REPL sees the appends
    let mut child = Command::new(env!("CARGO_BIN_EXE_ariel-repl"))
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn ariel-repl");
    let mut stdin = child.stdin.take().unwrap();
    let mut lines = std::io::BufReader::new(child.stdout.take().unwrap()).lines();
    stdin
        .write_all(b"create t (x = int)\n\\serve 127.0.0.1:0\n")
        .unwrap();
    stdin.flush().unwrap();
    let addr = loop {
        let line = lines.next().unwrap().unwrap();
        if let Some(rest) = line.split("serving on ").nth(1) {
            break rest.to_string();
        }
    };

    let mut c = Client::connect(addr.as_str()).unwrap();
    c.command("append t (x = 41)").unwrap();
    c.shutdown().unwrap();

    // back in the REPL: the served engine's state is visible
    stdin.write_all(b"retrieve (t.all)\n\\q\n").unwrap();
    stdin.flush().unwrap();
    drop(stdin);
    let rest: Vec<String> = lines.map(|l| l.unwrap()).collect();
    let text = rest.join("\n");
    assert!(text.contains("server stopped:"), "{text}");
    assert!(text.contains("| 41"), "{text}");
    assert!(child.wait().unwrap().success());
}
