//! Kill-and-recover: SIGKILL the served `ariel-repl` mid-workload, then
//! recover from its durability directory and prove the rebuilt engine —
//! store *and* match network — matches one that never crashed.

use ariel::{Ariel, EngineOptions};
use ariel_server::Client;
use std::io::BufRead;
use std::process::{Child, Command, Stdio};

const SEED: &str = "create emp (id = int, sal = int)\n\
                    create audit (id = int, sal = int)\n\
                    define rule watch if emp.sal >= 100 \
                    then append to audit (id = emp.id, sal = emp.sal)\n";

fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ariel_recover_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

type ServeLines = std::io::Lines<std::io::BufReader<std::process::ChildStdout>>;

/// Spawn `ariel-repl serve` against `dir` and return the child, the
/// address it bound (skipping any `recovered …` banner line), and the
/// stdout reader — keep it alive, or the server's exit summary hits a
/// broken pipe and fails the process.
fn spawn_serve(
    dir: &std::path::Path,
    seed: Option<&std::path::Path>,
) -> (Child, String, ServeLines) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_ariel-repl"));
    cmd.args(["serve", "127.0.0.1:0"]);
    if let Some(s) = seed {
        cmd.arg(s);
    }
    cmd.args(["--recover", dir.to_str().unwrap(), "--durability", "commit"]);
    let stderr = std::fs::File::create(dir.join("serve.stderr")).unwrap();
    let mut child = cmd
        .stdout(Stdio::piped())
        .stderr(stderr)
        .spawn()
        .expect("spawn ariel-repl serve");
    let mut lines = std::io::BufReader::new(child.stdout.take().unwrap()).lines();
    let addr = loop {
        let line = lines.next().expect("banner before EOF").unwrap();
        if let Some(rest) = line.strip_prefix("serving on ") {
            break rest.to_string();
        }
    };
    (child, addr, lines)
}

/// Store + match-network fingerprint: sorted rows per relation, pending
/// match count of the rule, and total α-memory entries.
fn fingerprint(db: &mut Ariel) -> (Vec<String>, Vec<String>, usize, usize) {
    let mut emp: Vec<String> = db
        .query("retrieve (emp.all)")
        .unwrap()
        .rows
        .iter()
        .map(|r| format!("{r:?}"))
        .collect();
    emp.sort();
    let mut audit: Vec<String> = db
        .query("retrieve (audit.all)")
        .unwrap()
        .rows
        .iter()
        .map(|r| format!("{r:?}"))
        .collect();
    audit.sort();
    let pending = db.pending_matches("watch").unwrap();
    let alpha = db.network_stats().alpha_entries;
    (emp, audit, pending, alpha)
}

fn append_cmd(i: i64) -> String {
    format!("append emp (id = {i}, sal = {})", (i * 7) % 150)
}

#[test]
fn sigkill_mid_workload_then_recover() {
    let dir = scratch("kill");
    let seed_path = dir.join("seed.arl");
    std::fs::write(&seed_path, SEED).unwrap();

    // first boot: no snapshot yet, so the server seeds and checkpoints
    let (mut child, addr, _lines) = spawn_serve(&dir, Some(&seed_path));
    let mut c = Client::connect(addr.as_str()).unwrap();
    for i in 0..40i64 {
        let r = c.command(&append_cmd(i)).unwrap();
        assert!(r.changes >= 1);
    }
    // SIGKILL: no flush, no shutdown handshake — every *acked* append
    // must still be on disk (durability commit fsyncs before the ack)
    child.kill().expect("kill served process");
    let _ = child.wait();
    drop(c);

    // reference engine that never crashed, fed the identical workload
    let mut reference = Ariel::new();
    reference.execute(SEED).unwrap();
    for i in 0..40i64 {
        reference.execute(&append_cmd(i)).unwrap();
    }

    let (mut recovered, report) =
        Ariel::recover(&dir, EngineOptions::default()).expect("recover after SIGKILL");
    assert_eq!(report.relations, 2);
    assert_eq!(report.rules, 1);
    assert_eq!(report.replayed, 40, "one wal record per acked append");
    assert!(
        report.replay_errors.is_empty(),
        "{:?}",
        report.replay_errors
    );
    assert_eq!(
        fingerprint(&mut recovered),
        fingerprint(&mut reference),
        "recovered store + match network must equal the uncrashed engine"
    );

    // second boot recovers off the same directory and keeps serving
    let (mut child, addr, _lines) = spawn_serve(&dir, None);
    let mut c = Client::connect(addr.as_str()).unwrap();
    assert_eq!(
        c.query("retrieve (emp.all)").unwrap().table.rows.len(),
        40,
        "restarted server sees the pre-crash rows"
    );
    c.command("append emp (id = 1000, sal = 149)").unwrap();
    c.shutdown().unwrap();
    let status = child.wait().unwrap();
    assert!(
        status.success(),
        "server exit {status:?}; stderr: {}",
        std::fs::read_to_string(dir.join("serve.stderr")).unwrap_or_default()
    );

    // the post-restart append is durable too
    let (mut after, _) = Ariel::recover(&dir, EngineOptions::default()).unwrap();
    assert_eq!(after.query("retrieve (emp.all)").unwrap().rows.len(), 41);
    let audit = after.query("retrieve (audit.all)").unwrap();
    assert!(
        audit.rows.iter().any(|r| format!("{r:?}").contains("1000")),
        "rule fired for the post-restart append and survived recovery"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
