//! The Ariel shell: an interactive REPL (and script runner) over the
//! active DBMS.
//!
//! ```text
//! ariel                 # interactive shell
//! ariel script.arl      # run a script file, then exit
//! ariel -i script.arl   # run a script file, then stay interactive
//! ```
//!
//! Statements may span lines: input is buffered until it parses (so
//! `do … end` blocks and long rules work naturally); a line ending in `;`
//! forces execution.

use ariel::Ariel;
use ariel_cli::{dispatch, ShellAction, HELP};
use std::io::{BufRead, Write};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut interactive_after = false;
    let mut script: Option<String> = None;
    for a in &args {
        match a.as_str() {
            "-i" => interactive_after = true,
            "-h" | "--help" => {
                println!("{HELP}");
                return;
            }
            path => script = Some(path.to_string()),
        }
    }

    let mut db = Ariel::new();

    if let Some(path) = script {
        let src = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(1);
            }
        };
        // scripts execute whole (the parser handles multi-command text)
        match dispatch(&mut db, &src) {
            ShellAction::Text(t) => print!("{t}"),
            ShellAction::Quit | ShellAction::Silent => {}
        }
        if !interactive_after {
            return;
        }
    }

    println!("Ariel active DBMS — \\help for help, \\q to quit");
    let stdin = std::io::stdin();
    let mut buffer = String::new();
    loop {
        let prompt = if buffer.is_empty() {
            "ariel> "
        } else {
            "   ... "
        };
        print!("{prompt}");
        std::io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let trimmed = line.trim_end();
        // meta commands always execute immediately
        if buffer.is_empty() && trimmed.starts_with('\\') {
            match dispatch(&mut db, trimmed) {
                ShellAction::Text(t) => print!("{t}"),
                ShellAction::Quit => break,
                ShellAction::Silent => {}
            }
            continue;
        }
        buffer.push_str(&line);
        let force = trimmed.ends_with(';');
        let complete =
            force || buffer.trim().is_empty() || ariel::query::parse_script(&buffer).is_ok();
        if !complete {
            // keep buffering only while the error is plausibly "more input
            // needed" (unterminated block / trailing operator); otherwise
            // report it now
            if let Err(e) = ariel::query::parse_script(&buffer) {
                let msg = e.to_string();
                let wants_more = msg.contains("unterminated")
                    || msg.contains("expected a command, found <eof>")
                    || msg.contains("expected an expression, found <eof>")
                    || msg.contains("found <eof>");
                if wants_more {
                    continue;
                }
                println!("error: {e}");
                buffer.clear();
                continue;
            }
        }
        let input = std::mem::take(&mut buffer);
        match dispatch(&mut db, &input) {
            ShellAction::Text(t) => print!("{t}"),
            ShellAction::Quit => break,
            ShellAction::Silent => {}
        }
    }
}
