//! The Ariel shell: an interactive REPL (and script runner) over the
//! active DBMS.
//!
//! ```text
//! ariel-repl                        # interactive shell
//! ariel-repl script.arl             # run a script file, then exit
//! ariel-repl -i script.arl          # run a script file, then stay interactive
//! ariel-repl serve <addr> [script]  # serve over TCP (docs/SERVER.md);
//!                                   # the script seeds schema/rules first
//! ```
//!
//! Statements may span lines: input is buffered until it parses (so
//! `do … end` blocks and long rules work naturally); a line ending in `;`
//! forces execution.

use ariel::Ariel;
use ariel_cli::{dispatch, ShellAction, HELP};
use std::io::{BufRead, Write};

/// `ariel-repl serve <addr> [script.arl]`: seed an engine from the
/// optional script, then serve it over TCP until a client sends a
/// `shutdown` frame (see docs/SERVER.md for the wire protocol).
fn serve_main(args: &[String]) {
    let Some(addr) = args.first() else {
        eprintln!("usage: ariel-repl serve <addr> [script.arl]");
        std::process::exit(2);
    };
    let mut db = Ariel::new();
    if let Some(path) = args.get(1) {
        let src = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(1);
            }
        };
        if let Err(e) = db.execute(&src) {
            eprintln!("error in {path}: {e}");
            std::process::exit(1);
        }
    }
    let server = match ariel_server::Server::bind(addr, db, ariel_server::ServerOptions::default())
    {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    println!("serving on {}", server.local_addr());
    std::io::stdout().flush().ok();
    let (stats, _engine) = server.run();
    println!(
        "server stopped: {} session(s), {} command(s), {} query(s), {} protocol error(s)",
        stats.sessions, stats.commands, stats.queries, stats.protocol_errors
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("serve") {
        serve_main(&args[1..]);
        return;
    }
    let mut interactive_after = false;
    let mut script: Option<String> = None;
    for a in &args {
        match a.as_str() {
            "-i" => interactive_after = true,
            "-h" | "--help" => {
                println!("{HELP}");
                return;
            }
            path => script = Some(path.to_string()),
        }
    }

    let mut db = Ariel::new();

    if let Some(path) = script {
        let src = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(1);
            }
        };
        // scripts execute whole (the parser handles multi-command text)
        match dispatch(&mut db, &src) {
            ShellAction::Text(t) => print!("{t}"),
            ShellAction::Quit | ShellAction::Silent => {}
        }
        if !interactive_after {
            return;
        }
    }

    println!("Ariel active DBMS — \\help for help, \\q to quit");
    let stdin = std::io::stdin();
    let mut buffer = String::new();
    loop {
        let prompt = if buffer.is_empty() {
            "ariel> "
        } else {
            "   ... "
        };
        print!("{prompt}");
        std::io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let trimmed = line.trim_end();
        // meta commands always execute immediately
        if buffer.is_empty() && trimmed.starts_with('\\') {
            match dispatch(&mut db, trimmed) {
                ShellAction::Text(t) => print!("{t}"),
                ShellAction::Quit => break,
                ShellAction::Silent => {}
            }
            continue;
        }
        buffer.push_str(&line);
        let force = trimmed.ends_with(';');
        let complete =
            force || buffer.trim().is_empty() || ariel::query::parse_script(&buffer).is_ok();
        if !complete {
            // keep buffering only while the error is plausibly "more input
            // needed" (unterminated block / trailing operator); otherwise
            // report it now
            if let Err(e) = ariel::query::parse_script(&buffer) {
                let msg = e.to_string();
                let wants_more = msg.contains("unterminated")
                    || msg.contains("expected a command, found <eof>")
                    || msg.contains("expected an expression, found <eof>")
                    || msg.contains("found <eof>");
                if wants_more {
                    continue;
                }
                println!("error: {e}");
                buffer.clear();
                continue;
            }
        }
        let input = std::mem::take(&mut buffer);
        match dispatch(&mut db, &input) {
            ShellAction::Text(t) => print!("{t}"),
            ShellAction::Quit => break,
            ShellAction::Silent => {}
        }
    }
}
