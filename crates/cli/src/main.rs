//! The Ariel shell: an interactive REPL (and script runner) over the
//! active DBMS.
//!
//! ```text
//! ariel-repl                        # interactive shell
//! ariel-repl script.arl             # run a script file, then exit
//! ariel-repl -i script.arl          # run a script file, then stay interactive
//! ariel-repl serve <addr> [script]  # serve over TCP (docs/SERVER.md);
//!                                   # the script seeds schema/rules first
//! ```
//!
//! Durability flags (both modes, docs/DURABILITY.md):
//!
//! ```text
//! --recover <dir>      recover from <dir> if it holds a snapshot, else
//!                      bootstrap (run the script) and checkpoint into it
//! --durability <mode>  off | commit | batch (default commit with --recover)
//! ```
//!
//! Statements may span lines: input is buffered until it parses (so
//! `do … end` blocks and long rules work naturally); a line ending in `;`
//! forces execution.

use ariel::{Ariel, Durability, EngineOptions};
use ariel_cli::{LogLevel, Shell, ShellAction, HELP};
use std::io::{BufRead, Write};
use std::path::{Path, PathBuf};

/// Durability settings pulled out of the argument list by
/// [`split_durability_args`].
struct DurabilityArgs {
    recover_dir: Option<PathBuf>,
    durability: Option<Durability>,
}

/// Strip `--recover <dir>` / `--durability <mode>` out of `args`,
/// returning the remaining positional arguments. Exits on a missing or
/// malformed operand (these flags gate data on disk — guessing is worse
/// than stopping).
fn split_durability_args(args: &[String]) -> (Vec<String>, DurabilityArgs) {
    let mut rest = Vec::new();
    let mut out = DurabilityArgs {
        recover_dir: None,
        durability: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--recover" => match it.next() {
                Some(dir) => out.recover_dir = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--recover needs a directory argument");
                    std::process::exit(2);
                }
            },
            "--durability" => match it.next().map(String::as_str).and_then(Durability::parse) {
                Some(d) => out.durability = Some(d),
                None => {
                    eprintln!("--durability needs one of: off, commit, batch");
                    std::process::exit(2);
                }
            },
            _ => rest.push(a.clone()),
        }
    }
    (rest, out)
}

/// Build the engine the durability flags ask for. With `--recover` and an
/// existing snapshot, recover and report what came back (the seed script
/// is skipped — the snapshot already holds its effects). With `--recover`
/// and no snapshot, bootstrap: run the seed closure, then checkpoint into
/// the directory so the next start recovers. Without `--recover`, a plain
/// in-memory engine.
fn build_engine(dur: &DurabilityArgs, seed: impl FnOnce(&mut Ariel)) -> Ariel {
    let durability = dur.durability.unwrap_or(if dur.recover_dir.is_some() {
        Durability::Commit
    } else {
        Durability::Off
    });
    let options = EngineOptions {
        durability,
        ..Default::default()
    };
    let Some(dir) = &dur.recover_dir else {
        let mut db = Ariel::with_options(options);
        seed(&mut db);
        return db;
    };
    if dir.join("snapshot.bin").exists() {
        match Ariel::recover(dir, options) {
            Ok((db, report)) => {
                println!(
                    "recovered {}: {} relation(s), {} rule(s), {} wal record(s) replayed",
                    dir.display(),
                    report.relations,
                    report.rules,
                    report.replayed
                );
                if report.torn_tail {
                    eprintln!("note: torn wal tail truncated (crash mid-write)");
                }
                for e in &report.replay_errors {
                    eprintln!("replay: {e}");
                }
                db
            }
            Err(e) => {
                eprintln!("cannot recover {}: {e}", dir.display());
                std::process::exit(1);
            }
        }
    } else {
        let mut db = Ariel::with_options(options);
        seed(&mut db);
        if let Err(e) = db.checkpoint(dir) {
            eprintln!("cannot checkpoint into {}: {e}", dir.display());
            std::process::exit(1);
        }
        db
    }
}

/// Run the seed script into a fresh engine (bootstrap path only).
fn run_seed_script(db: &mut Ariel, path: &Path) {
    let src = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {}: {e}", path.display());
            std::process::exit(1);
        }
    };
    if let Err(e) = db.execute(&src) {
        eprintln!("error in {}: {e}", path.display());
        std::process::exit(1);
    }
}

/// Strip the serve-mode telemetry/logging flags out of `args` into a
/// [`ariel_server::ServerOptions`], returning the remaining positional
/// arguments. Exits on a malformed operand, like
/// [`split_durability_args`].
fn split_server_args(args: &[String]) -> (Vec<String>, ariel_server::ServerOptions) {
    let mut rest = Vec::new();
    let mut options = ariel_server::ServerOptions::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--log-level" => match it.next().map(String::as_str).and_then(LogLevel::parse) {
                Some(level) => options.log_level = level,
                None => {
                    eprintln!("--log-level needs one of: off, error, info, debug");
                    std::process::exit(2);
                }
            },
            "--log-file" => match it.next() {
                Some(path) => options.log_file = Some(PathBuf::from(path)),
                None => {
                    eprintln!("--log-file needs a file argument");
                    std::process::exit(2);
                }
            },
            "--slow-threshold-ms" => match it.next().and_then(|n| n.parse::<u64>().ok()) {
                Some(ms) => options.slow_threshold_ns = ms * 1_000_000,
                None => {
                    eprintln!("--slow-threshold-ms needs an integer argument");
                    std::process::exit(2);
                }
            },
            "--no-telemetry" => options.telemetry = false,
            _ => rest.push(a.clone()),
        }
    }
    (rest, options)
}

/// `ariel-repl serve <addr> [script.arl]`: seed an engine from the
/// optional script (or recover one with `--recover`), then serve it over
/// TCP until a client sends a `shutdown` frame (see docs/SERVER.md for
/// the wire protocol).
fn serve_main(args: &[String]) {
    let (args, server_options) = split_server_args(args);
    let (rest, dur) = split_durability_args(&args);
    let Some(addr) = rest.first() else {
        eprintln!(
            "usage: ariel-repl serve <addr> [script.arl] [--recover <dir>] [--durability <mode>] \
             [--log-level off|error|info|debug] [--log-file <file>] \
             [--slow-threshold-ms <n>] [--no-telemetry]"
        );
        std::process::exit(2);
    };
    let db = build_engine(&dur, |db| {
        if let Some(path) = rest.get(1) {
            run_seed_script(db, Path::new(path));
        }
    });
    let server = match ariel_server::Server::bind(addr, db, server_options) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    println!("serving on {}", server.local_addr());
    std::io::stdout().flush().ok();
    let (stats, _engine) = server.run();
    println!(
        "server stopped: {} session(s), {} command(s), {} query(s), {} protocol error(s)",
        stats.sessions, stats.commands, stats.queries, stats.protocol_errors
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("serve") {
        serve_main(&args[1..]);
        return;
    }
    let (rest, dur) = split_durability_args(&args);
    let mut interactive_after = false;
    let mut script: Option<String> = None;
    for a in &rest {
        match a.as_str() {
            "-i" => interactive_after = true,
            "-h" | "--help" => {
                println!("{HELP}");
                return;
            }
            path => script = Some(path.to_string()),
        }
    }

    let recovered = dur
        .recover_dir
        .as_ref()
        .map(|d| d.join("snapshot.bin").exists())
        .unwrap_or(false);
    let mut shell = Shell::new(build_engine(&dur, |_| {}));

    // with a snapshot recovered the script's effects are already in the
    // engine; re-running it would double-append
    if let Some(path) = script.filter(|_| !recovered) {
        let src = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(1);
            }
        };
        // scripts execute whole (the parser handles multi-command text)
        match shell.dispatch(&src) {
            ShellAction::Text(t) => print!("{t}"),
            ShellAction::Quit | ShellAction::Silent => {}
        }
        if !interactive_after {
            return;
        }
    }

    println!("Ariel active DBMS — \\help for help, \\q to quit");
    let stdin = std::io::stdin();
    let mut buffer = String::new();
    loop {
        let prompt = if buffer.is_empty() {
            "ariel> "
        } else {
            "   ... "
        };
        print!("{prompt}");
        std::io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let trimmed = line.trim_end();
        // meta commands always execute immediately
        if buffer.is_empty() && trimmed.starts_with('\\') {
            match shell.dispatch(trimmed) {
                ShellAction::Text(t) => print!("{t}"),
                ShellAction::Quit => break,
                ShellAction::Silent => {}
            }
            continue;
        }
        buffer.push_str(&line);
        let force = trimmed.ends_with(';');
        let complete =
            force || buffer.trim().is_empty() || ariel::query::parse_script(&buffer).is_ok();
        if !complete {
            // keep buffering only while the error is plausibly "more input
            // needed" (unterminated block / trailing operator); otherwise
            // report it now
            if let Err(e) = ariel::query::parse_script(&buffer) {
                let msg = e.to_string();
                let wants_more = msg.contains("unterminated")
                    || msg.contains("expected a command, found <eof>")
                    || msg.contains("expected an expression, found <eof>")
                    || msg.contains("found <eof>");
                if wants_more {
                    continue;
                }
                println!("error: {e}");
                buffer.clear();
                continue;
            }
        }
        let input = std::mem::take(&mut buffer);
        match shell.dispatch(&input) {
            ShellAction::Text(t) => print!("{t}"),
            ShellAction::Quit => break,
            ShellAction::Silent => {}
        }
    }
}
