//! Library half of the Ariel shell: command dispatch and output
//! formatting, separated from terminal I/O so it is unit-testable.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use ariel::query::CmdOutput;
use ariel::storage::Value;
use ariel::Ariel;
use ariel_server::{Server, ServerOptions, SlowLog};

pub use ariel::ArielResult;
pub use ariel_server::LogLevel;

/// Re-exported engine output type.
pub type Output = CmdOutput;

/// Slow-log slots the shell keeps (`\slowlog`).
const SHELL_SLOW_CAPACITY: usize = 16;

/// REPL state beyond the engine itself: a client-side slow-command log
/// over everything executed in this shell (the server keeps its own; see
/// `docs/OBSERVABILITY.md`).
pub struct Shell {
    /// The shell's database.
    pub db: Ariel,
    slow: SlowLog,
}

impl Shell {
    /// Wrap an engine in shell state.
    pub fn new(db: Ariel) -> Shell {
        Shell {
            db,
            slow: SlowLog::new(SHELL_SLOW_CAPACITY, 0),
        }
    }

    /// Execute one line of shell input, timing non-meta statements into
    /// the shell's slow log. Same contract as [`dispatch`].
    pub fn dispatch(&mut self, line: &str) -> ShellAction {
        let trimmed = line.trim();
        if let Some(meta) = trimmed.strip_prefix('\\') {
            if meta.split_whitespace().next() == Some("slowlog") {
                return slowlog_command(&self.slow, meta);
            }
        }
        let statement =
            !trimmed.is_empty() && !trimmed.starts_with('\\') && !trimmed.starts_with('#');
        let t0 = std::time::Instant::now();
        let action = dispatch(&mut self.db, line);
        if statement {
            let dur_ns = t0.elapsed().as_nanos() as u64;
            self.slow
                .record(0, ariel_server::Opcode::Command, dur_ns, trimmed);
        }
        action
    }
}

/// Render `\slowlog [clear]` against a slow log.
fn slowlog_command(slow: &SlowLog, meta: &str) -> ShellAction {
    let mut parts = meta.split_whitespace();
    parts.next(); // "slowlog"
    match parts.next() {
        Some("clear") => {
            slow.clear();
            ShellAction::Text("slow log cleared\n".into())
        }
        Some(_) => ShellAction::Text("usage: \\slowlog [clear]\n".into()),
        None => {
            let entries = slow.entries();
            if entries.is_empty() {
                return ShellAction::Text("(slow log empty)\n".into());
            }
            let mut text = String::new();
            for e in &entries {
                text.push_str(&format!("{:>12.3} ms  {}\n", e.dur_ns as f64 / 1e6, e.text));
            }
            text.push_str(&format!(
                "({} slowest statement(s) this session)\n",
                entries.len()
            ));
            ShellAction::Text(text)
        }
    }
}

/// Result of one shell input line.
#[derive(Debug, PartialEq)]
pub enum ShellAction {
    /// Text to print.
    Text(String),
    /// Exit the shell.
    Quit,
    /// Nothing to print.
    Silent,
}

/// Render a result set as an aligned ASCII table.
pub fn format_table(columns: &[String], rows: &[Vec<Value>]) -> String {
    if columns.is_empty() {
        return String::new();
    }
    let render = |v: &Value| -> String {
        match v {
            Value::Str(s) => s.clone(),
            Value::Sym(sym) => sym.as_str().to_string(),
            other => other.to_string(),
        }
    };
    let mut widths: Vec<usize> = columns.iter().map(|c| c.len()).collect();
    let rendered: Vec<Vec<String>> = rows
        .iter()
        .map(|r| r.iter().map(render).collect())
        .collect();
    for row in &rendered {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let sep = |out: &mut String| {
        out.push('+');
        for w in &widths {
            out.push_str(&"-".repeat(w + 2));
            out.push('+');
        }
        out.push('\n');
    };
    sep(&mut out);
    out.push('|');
    for (c, w) in columns.iter().zip(&widths) {
        out.push_str(&format!(" {c:<w$} |"));
    }
    out.push('\n');
    sep(&mut out);
    for row in &rendered {
        out.push('|');
        for (cell, w) in row.iter().zip(&widths) {
            out.push_str(&format!(" {cell:<w$} |"));
        }
        out.push('\n');
    }
    sep(&mut out);
    out.push_str(&format!(
        "({} row{})\n",
        rows.len(),
        if rows.len() == 1 { "" } else { "s" }
    ));
    out
}

/// Execute one line of shell input: a meta command (starting with `\`) or
/// ARL/POSTQUEL source.
pub fn dispatch(db: &mut Ariel, line: &str) -> ShellAction {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return ShellAction::Silent;
    }
    if let Some(meta) = line.strip_prefix('\\') {
        return meta_command(db, meta);
    }
    match db.execute(line) {
        Ok(outputs) => {
            let mut text = String::new();
            for out in outputs {
                if !out.columns.is_empty() {
                    text.push_str(&format_table(&out.columns, &out.rows));
                } else if !out.changes.is_empty() {
                    text.push_str(&format!("({} change(s))\n", out.changes.len()));
                } else {
                    text.push_str("ok\n");
                }
            }
            for note in db.drain_notifications() {
                text.push_str(&format!("notification on `{}`:\n", note.channel));
                text.push_str(&format_table(&note.columns, &note.rows));
            }
            ShellAction::Text(text)
        }
        Err(e) => ShellAction::Text(format!("error: {e}\n")),
    }
}

fn meta_command(db: &mut Ariel, meta: &str) -> ShellAction {
    let mut parts = meta.split_whitespace();
    match parts.next() {
        Some("q") | Some("quit") | Some("exit") => ShellAction::Quit,
        Some("d") | Some("relations") => {
            let mut text = String::new();
            for name in db.catalog().names() {
                let rel = db.catalog().get(&name).unwrap();
                let rel = rel.borrow();
                let attrs: Vec<String> = rel
                    .schema()
                    .attrs()
                    .iter()
                    .map(|a| format!("{} {}", a.name, a.ty))
                    .collect();
                text.push_str(&format!(
                    "{name} ({}) — {} tuple(s)\n",
                    attrs.join(", "),
                    rel.len()
                ));
            }
            if text.is_empty() {
                text.push_str("(no relations)\n");
            }
            ShellAction::Text(text)
        }
        Some("rules") => {
            let mut text = String::new();
            for rule in db.rules().iter() {
                text.push_str(&format!(
                    "[{}] {} (priority {}, {})\n    {}\n",
                    if rule.is_active() {
                        "active"
                    } else {
                        "installed"
                    },
                    rule.name,
                    rule.priority,
                    rule.ruleset,
                    rule.def
                ));
            }
            if text.is_empty() {
                text.push_str("(no rules)\n");
            }
            ShellAction::Text(text)
        }
        Some("stats") => {
            if parts.next() == Some("bytes") {
                let m = db.memory_stats();
                return ShellAction::Text(format!(
                    "match state:\n\
                     \x20 alpha    {} bytes over {} entries ({:.1} bytes/entry)\n\
                     \x20 beta     {} bytes\n\
                     \x20 pnodes   {} bytes over {} rows\n\
                     \x20 selnet   {} bytes\n\
                     symbol table: {} symbols, {} bytes\n\
                     arenas: {} takes, {} reuses, {} bytes peak scratch\n",
                    m.alpha_bytes,
                    m.alpha_entries,
                    m.alpha_bytes_per_entry(),
                    m.beta_bytes,
                    m.pnode_bytes,
                    m.pnode_rows,
                    m.selnet_bytes,
                    m.symbols,
                    m.symbol_bytes,
                    m.arena_takes,
                    m.arena_reuses,
                    m.arena_high_water_bytes,
                ));
            }
            let s = db.stats();
            let n = db.network_stats();
            ShellAction::Text(format!(
                "engine: {} transitions, {} tokens, {} firings\n\
                 network: {} rules, {} alpha nodes ({} virtual), \
                 {} alpha entries, {} bytes match state\n",
                s.transitions,
                s.tokens,
                s.firings,
                n.rules,
                n.alpha_nodes,
                n.virtual_alpha_nodes,
                n.alpha_entries,
                n.alpha_bytes + n.pnode_bytes + n.selnet_bytes,
            ))
        }
        Some("explain") => {
            let rest: Vec<&str> = parts.collect();
            let src = rest.join(" ");
            if src.is_empty() {
                return ShellAction::Text(
                    "usage: \\explain <dml command> | \\explain rule <name> | \\explain analyze <command>\n"
                        .into(),
                );
            }
            let result = if let Some(rule) = src.strip_prefix("rule ") {
                db.explain_rule_action(rule.trim())
            } else if let Some(cmd) = src.strip_prefix("analyze ") {
                db.explain_analyze(cmd.trim())
            } else {
                db.explain(&src)
            };
            match result {
                Ok(t) => ShellAction::Text(t),
                Err(e) => ShellAction::Text(format!("error: {e}\n")),
            }
        }
        Some("metrics") => match parts.next() {
            None => ShellAction::Text(format!("{}\n", db.metrics_json())),
            Some("prom") => ShellAction::Text(db.metrics_prometheus()),
            Some(_) => ShellAction::Text("usage: \\metrics [prom]\n".into()),
        },
        Some("observe") => match parts.next() {
            Some("on") => {
                db.set_observability(true);
                ShellAction::Text("observability on (timing histograms active)\n".into())
            }
            Some("off") => {
                db.set_observability(false);
                ShellAction::Text("observability off\n".into())
            }
            _ => ShellAction::Text(format!(
                "observability is {}; usage: \\observe on|off\n",
                if db.observing() { "on" } else { "off" }
            )),
        },
        Some("trace") => match parts.next() {
            Some("on") => {
                db.set_tracing(true);
                ShellAction::Text(format!(
                    "tracing on (flight recorder active, capacity {})\n",
                    db.trace_limit()
                ))
            }
            Some("off") => {
                db.set_tracing(false);
                ShellAction::Text("tracing off\n".into())
            }
            Some("limit") => match parts.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n >= 1 => {
                    db.set_trace_limit(n);
                    ShellAction::Text(format!("trace limit set to {}\n", db.trace_limit()))
                }
                _ => ShellAction::Text(format!(
                    "trace limit is {}; usage: \\trace limit <n>\n",
                    db.trace_limit()
                )),
            },
            Some("show") => {
                let limit = parts.next().and_then(|n| n.parse::<usize>().ok());
                if !db.tracing() {
                    return ShellAction::Text(
                        "tracing is off — nothing recorded (enable with \\trace on)\n".into(),
                    );
                }
                ShellAction::Text(db.render_trace(limit))
            }
            Some("export") => match parts.next() {
                Some(path) => match std::fs::write(path, db.chrome_trace_json()) {
                    Ok(()) => ShellAction::Text(format!(
                        "wrote Chrome trace ({} events) to {path}\n",
                        db.trace_events().len()
                    )),
                    Err(e) => ShellAction::Text(format!("error: {e}\n")),
                },
                None => ShellAction::Text("usage: \\trace export <file>\n".into()),
            },
            _ => ShellAction::Text(format!(
                "tracing is {}; usage: \\trace on|off|limit <n>|show [n]|export <file>\n",
                if db.tracing() { "on" } else { "off" }
            )),
        },
        Some("parallel") => match parts.next() {
            Some("on") => match db.set_parallel_match(true) {
                Ok(()) => ShellAction::Text(format!(
                    "parallel match on ({} threads)\n",
                    match db.match_threads() {
                        0 => "auto".to_string(),
                        n => n.to_string(),
                    }
                )),
                Err(e) => ShellAction::Text(format!("error: {e}\n")),
            },
            Some("off") => match db.set_parallel_match(false) {
                Ok(()) => ShellAction::Text("parallel match off\n".into()),
                Err(e) => ShellAction::Text(format!("error: {e}\n")),
            },
            Some("threads") => match parts.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) => {
                    db.set_match_threads(n);
                    ShellAction::Text(format!(
                        "match threads set to {}\n",
                        match n {
                            0 => "auto".to_string(),
                            n => n.to_string(),
                        }
                    ))
                }
                None => ShellAction::Text(format!(
                    "match threads: {}; usage: \\parallel threads <n> (0 = auto)\n",
                    match db.match_threads() {
                        0 => "auto".to_string(),
                        n => n.to_string(),
                    }
                )),
            },
            _ => ShellAction::Text(format!(
                "parallel match is {}; usage: \\parallel on|off|threads <n>\n",
                if db.parallel_match() { "on" } else { "off" }
            )),
        },
        Some("why") => {
            let rest: Vec<&str> = parts.collect();
            match rest.as_slice() {
                [name] => match db.why(name) {
                    Ok(t) => ShellAction::Text(t),
                    Err(e) => ShellAction::Text(format!("error: {e}\n")),
                },
                _ => ShellAction::Text("usage: \\why <rule>\n".into()),
            }
        }
        Some("checkpoint") => {
            let rest: Vec<&str> = parts.collect();
            let usage = "usage: \\checkpoint <dir> [off|commit|batch]\n";
            let (dir, mode) = match rest.as_slice() {
                [dir] => (*dir, None),
                [dir, mode] => (*dir, Some(*mode)),
                _ => return ShellAction::Text(usage.into()),
            };
            if let Some(m) = mode {
                let Some(d) = ariel::Durability::parse(m) else {
                    return ShellAction::Text(format!("unknown durability mode `{m}`; {usage}"));
                };
                if let Err(e) = db.set_durability(d) {
                    return ShellAction::Text(format!("error: {e}\n"));
                }
            }
            match db.checkpoint(dir) {
                Ok(bytes) => ShellAction::Text(format!(
                    "checkpoint: {bytes}-byte snapshot in {dir}, log reset \
                     (durability {})\n",
                    db.options().durability.as_str()
                )),
                Err(e) => ShellAction::Text(format!("error: {e}\n")),
            }
        }
        Some("serve") => match parts.next() {
            Some(addr) => serve_blocking(db, addr),
            None => ShellAction::Text(
                "usage: \\serve <addr>   (e.g. \\serve 127.0.0.1:7878; port 0 = ephemeral)\n"
                    .into(),
            ),
        },
        Some("help") | Some("h") | Some("?") => ShellAction::Text(HELP.to_string()),
        other => ShellAction::Text(format!(
            "unknown meta command `\\{}` — try \\help\n",
            other.unwrap_or_default()
        )),
    }
}

/// Hand the shell's database to a TCP server until a client sends a
/// `shutdown` frame, then take it back: whatever the sessions appended
/// is in the REPL afterwards, and a failed bind costs nothing. Prints
/// the bound address up front (the shell blocks while serving).
fn serve_blocking(db: &mut Ariel, addr: &str) -> ShellAction {
    let engine = std::mem::replace(db, Ariel::new());
    let server = match Server::bind(addr, engine, ServerOptions::default()) {
        Ok(s) => s,
        Err(e) => {
            let msg = format!("error: {e}\n");
            *db = *e.engine;
            return ShellAction::Text(msg);
        }
    };
    // announce before blocking — clients need the address (and tests the
    // ephemeral port) while the server runs
    println!("serving on {}", server.local_addr());
    use std::io::Write as _;
    std::io::stdout().flush().ok();
    let (stats, engine) = server.run();
    *db = engine;
    ShellAction::Text(format!(
        "server stopped: {} session(s), {} command(s), {} query(s), {} protocol error(s), \
         {} group(s) executed (largest {})\n",
        stats.sessions,
        stats.commands,
        stats.queries,
        stats.protocol_errors,
        stats.batches,
        stats.max_batch,
    ))
}

/// Shell help text.
pub const HELP: &str = r#"Ariel active DBMS shell.

Commands (POSTQUEL subset + ARL):
  create emp (name = string, sal = float, dno = int)
  append emp (name = "alice", sal = 42000, dno = 1)
  retrieve (emp.name, emp.sal) where emp.sal > 10000
  replace emp (sal = 50000) where emp.name = "alice"
  delete emp where emp.dno = 9
  do <cmd> <cmd> ... end                    -- one transition (logical events)
  define rule r [in set] [priority n] [on append emp]
      [if emp.sal > 1.1 * previous emp.sal] then <action>
  activate rule r | deactivate rule r | destroy rule r
  define index on emp (sal) using btree
  notify channel (x = emp.sal)              -- async notification

Meta commands:
  \d, \relations    list relations
  \rules            list rules
  \explain <cmd>    show the optimizer's plan without executing
  \explain rule <r> show the plans a rule firing would run (Fig. 8)
  \explain analyze <cmd>
                    execute <cmd> under a timing capture and show the
                    per-node match work it caused (tokens, times)
  \observe on|off   toggle the timing tier (per-phase histograms)
  \trace on|off     toggle the flight recorder (causal trace events)
  \trace limit <n>  set the recorder's ring capacity
  \trace show [n]   list the recorded events (newest n)
  \trace export <f> write the recording as Chrome trace_event JSON
  \why <rule>       causal chain of the rule's recorded firings
  \parallel on|off  toggle the parallel match path (A-TREAT only)
  \parallel threads <n>
                    worker threads for parallel match (0 = auto)
  \serve <addr>     serve this database over TCP until a client sends
                    shutdown (blocks; REPL state survives — docs/SERVER.md)
  \checkpoint <dir> [off|commit|batch]
                    write a snapshot to <dir>, reset its write-ahead log,
                    and log further commits there (docs/DURABILITY.md)
  \metrics          full metrics snapshot as JSON
  \metrics prom     the same snapshot in Prometheus text exposition
  \slowlog [clear]  the slowest statements this shell has executed
  \stats            engine and network statistics
  \stats bytes      per-memory byte breakdown (alpha/beta/pnode/selnet,
                    symbol table, arena reuse counters)
  \help             this text
  \q                quit
"#;

#[cfg(test)]
mod tests {
    use super::*;

    fn shell_db() -> Ariel {
        let mut db = Ariel::new();
        db.execute("create t (x = int, name = string)").unwrap();
        db
    }

    #[test]
    fn table_formatting() {
        let cols = vec!["x".to_string(), "name".to_string()];
        let rows = vec![
            vec![Value::Int(1), Value::from("alpha")],
            vec![Value::Int(22), Value::from("b")],
        ];
        let t = format_table(&cols, &rows);
        assert!(t.contains("| x  | name  |"));
        assert!(t.contains("| 1  | alpha |"));
        assert!(t.contains("| 22 | b     |"));
        assert!(t.contains("(2 rows)"));
    }

    #[test]
    fn dispatch_dml_and_query() {
        let mut db = shell_db();
        let a = dispatch(&mut db, r#"append t (x = 1, name = "one")"#);
        assert_eq!(a, ShellAction::Text("(1 change(s))\n".into()));
        let ShellAction::Text(t) = dispatch(&mut db, "retrieve (t.all)") else {
            panic!()
        };
        assert!(t.contains("one"));
        assert!(t.contains("(1 row)"));
    }

    #[test]
    fn dispatch_errors_are_text() {
        let mut db = shell_db();
        let ShellAction::Text(t) = dispatch(&mut db, "retrieve (no.x)") else {
            panic!()
        };
        assert!(t.starts_with("error:"));
    }

    #[test]
    fn meta_commands() {
        let mut db = shell_db();
        assert_eq!(dispatch(&mut db, "\\q"), ShellAction::Quit);
        let ShellAction::Text(t) = dispatch(&mut db, "\\d") else {
            panic!()
        };
        assert!(t.contains("t (x int, name string)"));
        dispatch(&mut db, "define rule r if t.x > 0 then delete t");
        let ShellAction::Text(t) = dispatch(&mut db, "\\rules") else {
            panic!()
        };
        assert!(t.contains("[active] r"));
        let ShellAction::Text(t) = dispatch(&mut db, "\\stats") else {
            panic!()
        };
        assert!(t.contains("network: 1 rules"));
        dispatch(&mut db, r#"append t (x = 3, name = "mem")"#);
        let ShellAction::Text(t) = dispatch(&mut db, "\\stats bytes") else {
            panic!()
        };
        assert!(t.contains("match state:"));
        assert!(t.contains("bytes/entry"));
        assert!(t.contains("symbol table:"));
        assert!(t.contains("arenas:"));
        let ShellAction::Text(t) = dispatch(&mut db, "\\nope") else {
            panic!()
        };
        assert!(t.contains("unknown meta command"));
    }

    #[test]
    fn parallel_meta_commands() {
        let mut db = shell_db();
        let ShellAction::Text(t) = dispatch(&mut db, "\\parallel") else {
            panic!()
        };
        assert!(t.contains("parallel match is off"));
        let ShellAction::Text(t) = dispatch(&mut db, "\\parallel threads 2") else {
            panic!()
        };
        assert!(t.contains("match threads set to 2"));
        let ShellAction::Text(t) = dispatch(&mut db, "\\parallel on") else {
            panic!()
        };
        assert!(t.contains("parallel match on (2 threads)"));
        assert!(db.parallel_match());
        // the engine still works with the pool active
        dispatch(&mut db, r#"append t (x = 5, name = "par")"#);
        let ShellAction::Text(t) = dispatch(&mut db, "retrieve (t.x) where t.x = 5") else {
            panic!()
        };
        assert!(t.contains("(1 row)"));
        let ShellAction::Text(t) = dispatch(&mut db, "\\parallel off") else {
            panic!()
        };
        assert!(t.contains("parallel match off"));
        let ShellAction::Text(t) = dispatch(&mut db, "\\parallel threads") else {
            panic!()
        };
        assert!(t.contains("match threads: 2"));
    }

    #[test]
    fn trace_meta_commands() {
        let mut db = shell_db();
        // off by default, and \trace show says so
        let ShellAction::Text(t) = dispatch(&mut db, "\\trace") else {
            panic!()
        };
        assert!(t.contains("tracing is off"), "{t}");
        let ShellAction::Text(t) = dispatch(&mut db, "\\trace show") else {
            panic!()
        };
        assert!(t.contains("tracing is off"), "{t}");
        // on, record, show
        let ShellAction::Text(t) = dispatch(&mut db, "\\trace on") else {
            panic!()
        };
        assert!(t.contains("tracing on"), "{t}");
        dispatch(&mut db, "create log (x = int)");
        dispatch(
            &mut db,
            "define rule r if t.x > 0 then append to log(x = t.x)",
        );
        dispatch(&mut db, r#"append t (x = 3, name = "n")"#);
        let ShellAction::Text(t) = dispatch(&mut db, "\\trace show") else {
            panic!()
        };
        assert!(t.contains("transition-begin"), "{t}");
        assert!(t.contains("firing"), "{t}");
        let ShellAction::Text(t) = dispatch(&mut db, "\\trace show 2") else {
            panic!()
        };
        assert!(t.contains("showing newest 2"), "{t}");
        // limit
        let ShellAction::Text(t) = dispatch(&mut db, "\\trace limit 8") else {
            panic!()
        };
        assert!(t.contains("trace limit set to 8"), "{t}");
        let ShellAction::Text(t) = dispatch(&mut db, "\\trace limit") else {
            panic!()
        };
        assert!(t.contains("trace limit is 8"), "{t}");
        // off discards
        let ShellAction::Text(t) = dispatch(&mut db, "\\trace off") else {
            panic!()
        };
        assert!(t.contains("tracing off"), "{t}");
    }

    #[test]
    fn why_meta_command() {
        let mut db = shell_db();
        let ShellAction::Text(t) = dispatch(&mut db, "\\why") else {
            panic!()
        };
        assert!(t.contains("usage"), "{t}");
        let ShellAction::Text(t) = dispatch(&mut db, "\\why nope") else {
            panic!()
        };
        assert!(t.starts_with("error:"), "{t}");
        dispatch(&mut db, "create log (x = int)");
        dispatch(
            &mut db,
            "define rule r if t.x > 0 then append to log(x = t.x)",
        );
        let ShellAction::Text(t) = dispatch(&mut db, "\\why r") else {
            panic!()
        };
        assert!(t.contains("tracing is off"), "{t}");
        dispatch(&mut db, "\\trace on");
        dispatch(&mut db, r#"append t (x = 3, name = "n")"#);
        let ShellAction::Text(t) = dispatch(&mut db, "\\why r") else {
            panic!()
        };
        assert!(t.contains("firing #1 of r"), "{t}");
        assert!(t.contains("command `append t"), "{t}");
    }

    #[test]
    fn trace_export_writes_chrome_json() {
        let mut db = shell_db();
        dispatch(&mut db, "\\trace on");
        dispatch(&mut db, r#"append t (x = 1, name = "e")"#);
        let path = std::env::temp_dir().join("ariel_cli_trace_export_test.json");
        let line = format!("\\trace export {}", path.display());
        let ShellAction::Text(t) = dispatch(&mut db, &line) else {
            panic!()
        };
        assert!(t.contains("wrote Chrome trace"), "{t}");
        let json = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert!(json.starts_with("{\"traceEvents\":["), "{json}");
    }

    #[test]
    fn checkpoint_meta_command() {
        let mut db = shell_db();
        dispatch(&mut db, r#"append t (x = 1, name = "persisted")"#);
        let ShellAction::Text(t) = dispatch(&mut db, "\\checkpoint") else {
            panic!()
        };
        assert!(t.starts_with("usage:"), "{t}");
        let ShellAction::Text(t) = dispatch(&mut db, "\\checkpoint /tmp/x paranoid") else {
            panic!()
        };
        assert!(t.contains("unknown durability mode"), "{t}");

        let dir = std::env::temp_dir().join(format!("ariel_cli_ckpt_{}", std::process::id()));
        let line = format!("\\checkpoint {} commit", dir.display());
        let ShellAction::Text(t) = dispatch(&mut db, &line) else {
            panic!()
        };
        assert!(t.contains("snapshot in"), "{t}");
        assert!(t.contains("durability commit"), "{t}");
        assert!(dir.join("snapshot.bin").exists());
        // post-checkpoint commits land in the wal
        dispatch(&mut db, r#"append t (x = 2, name = "logged")"#);
        assert_eq!(db.wal_records(), 1);

        let (mut db2, report) =
            Ariel::recover(&dir, ariel::EngineOptions::default()).expect("recover");
        assert_eq!(report.replayed, 1);
        let out = db2.query("retrieve (t.x)").unwrap();
        assert_eq!(out.rows.len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn metrics_prom_meta_command() {
        let mut db = shell_db();
        dispatch(&mut db, r#"append t (x = 1, name = "m")"#);
        let ShellAction::Text(t) = dispatch(&mut db, "\\metrics prom") else {
            panic!()
        };
        assert!(
            t.contains("# TYPE ariel_engine_transitions_total counter"),
            "{t}"
        );
        assert!(t.contains("ariel_engine_transitions_total 1"), "{t}");
        assert!(t.contains("ariel_wal_attached 0"), "{t}");
        let ShellAction::Text(t) = dispatch(&mut db, "\\metrics nope") else {
            panic!()
        };
        assert!(t.starts_with("usage:"), "{t}");
        // bare \metrics still prints JSON
        let ShellAction::Text(t) = dispatch(&mut db, "\\metrics") else {
            panic!()
        };
        assert!(t.starts_with("{\"engine\":"), "{t}");
    }

    #[test]
    fn shell_slowlog_records_statements() {
        let mut shell = Shell::new(shell_db());
        let ShellAction::Text(t) = shell.dispatch("\\slowlog") else {
            panic!()
        };
        assert!(t.contains("(slow log empty)"), "{t}");
        shell.dispatch(r#"append t (x = 1, name = "slow")"#);
        shell.dispatch("retrieve (t.all)");
        shell.dispatch("\\stats"); // meta commands are not timed
        let ShellAction::Text(t) = shell.dispatch("\\slowlog") else {
            panic!()
        };
        assert!(t.contains("append t"), "{t}");
        assert!(t.contains("retrieve (t.all)"), "{t}");
        assert!(t.contains("ms"), "{t}");
        assert!(t.contains("(2 slowest statement(s) this session)"), "{t}");
        assert!(!t.contains("\\stats"), "{t}");
        let ShellAction::Text(t) = shell.dispatch("\\slowlog clear") else {
            panic!()
        };
        assert!(t.contains("cleared"), "{t}");
        let ShellAction::Text(t) = shell.dispatch("\\slowlog") else {
            panic!()
        };
        assert!(t.contains("(slow log empty)"), "{t}");
    }

    #[test]
    fn comments_and_blanks_are_silent() {
        let mut db = shell_db();
        assert_eq!(dispatch(&mut db, "   "), ShellAction::Silent);
        assert_eq!(dispatch(&mut db, "# a comment"), ShellAction::Silent);
    }

    #[test]
    fn notifications_are_printed() {
        let mut db = shell_db();
        dispatch(
            &mut db,
            "define rule w on append t then notify chan (x = t.x)",
        );
        let ShellAction::Text(t) = dispatch(&mut db, r#"append t (x = 5, name = "n")"#) else {
            panic!()
        };
        assert!(t.contains("notification on `chan`"), "{t}");
        assert!(t.contains("| 5 |"));
    }
}
