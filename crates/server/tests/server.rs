//! End-to-end tests for the TCP server: concurrent sessions driving rule
//! firings, session isolation, wire-level misbehaviour, a client killed
//! mid-batch, and leak-free shutdown.

use ariel::{Ariel, EngineOptions};
use ariel_server::protocol::{
    encode_hello_client, read_frame, write_frame, ErrorCode, Opcode, MAX_FRAME_LEN,
    PROTOCOL_VERSION,
};
use ariel_server::{Client, ClientError, Server, ServerHandle, ServerOptions};
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};

/// A fresh engine with the test schema: a `kv` relation and an active
/// rule mirroring large values into `audit` (so appends exercise the
/// match network, not just the heap).
fn test_engine(serve_batch: usize) -> Ariel {
    let mut db = Ariel::with_options(EngineOptions {
        serve_batch,
        ..Default::default()
    });
    db.execute("create kv (k = int, v = int)").unwrap();
    db.execute("create audit (k = int, v = int)").unwrap();
    db.execute("define rule big if kv.v >= 100 then append to audit (k = kv.k, v = kv.v)")
        .unwrap();
    db
}

fn spawn_server(serve_batch: usize) -> (SocketAddr, ServerHandle) {
    spawn_server_with(serve_batch, ServerOptions::default())
}

fn spawn_server_with(serve_batch: usize, options: ServerOptions) -> (SocketAddr, ServerHandle) {
    let server = Server::bind("127.0.0.1:0", test_engine(serve_batch), options).unwrap();
    let addr = server.local_addr();
    (addr, server.spawn())
}

#[test]
fn two_concurrent_clients_end_to_end() {
    let (addr, handle) = spawn_server(64);

    // two clients appending disjoint key ranges concurrently, some rows
    // above the rule threshold
    let writer = |base: i64| {
        move || {
            let mut c = Client::connect(addr).unwrap();
            for i in 0..50i64 {
                let k = base + i;
                let v = if i % 5 == 0 { 100 + i } else { i };
                let r = c.command(&format!("append kv (k = {k}, v = {v})")).unwrap();
                assert!(r.changes >= 1, "append must report its change");
            }
            c
        }
    };
    let t1 = std::thread::spawn(writer(0));
    let t2 = std::thread::spawn(writer(1000));
    let mut c1 = t1.join().unwrap();
    let c2 = t2.join().unwrap();

    // both clients' rows and the rule's firings are visible to a query
    let kv = c1.query("retrieve (kv.all)").unwrap();
    assert_eq!(kv.table.rows.len(), 100, "both sessions' appends landed");
    let audit = c1.query("retrieve (audit.all)").unwrap();
    assert_eq!(
        audit.table.rows.len(),
        20,
        "rule fired once per above-threshold append (10 per client)"
    );

    drop(c2);
    let (stats, engine) = handle.shutdown();
    assert_eq!(stats.sessions, 2);
    assert_eq!(stats.protocol_errors, 0);
    assert_eq!(stats.engine_errors, 0);
    // engine comes back out of the server with all the state
    let mut engine = engine;
    let out = engine.query("retrieve (kv.all)").unwrap();
    assert_eq!(out.rows.len(), 100);
}

#[test]
fn session_isolation_interleaved() {
    let (addr, handle) = spawn_server(64);
    let mut a = Client::connect(addr).unwrap();
    let mut b = Client::connect(addr).unwrap();
    assert_ne!(a.session_id(), b.session_id(), "distinct session ids");

    // interleave commands; each client must see exactly its own replies
    for i in 0..20i64 {
        let ra = a.command(&format!("append kv (k = {i}, v = 1)")).unwrap();
        assert_eq!(ra.changes, 1, "client a sees one change per append");
        let rb = b
            .command(&format!(
                "append kv (k = {}, v = 2)\nappend kv (k = {}, v = 3)",
                100 + i,
                200 + i
            ))
            .unwrap();
        assert_eq!(rb.changes, 2, "client b sees its two-append change count");
    }

    // an engine error on one session leaves the other (and itself) usable
    let err = a.command("append nosuch (k = 1)").unwrap_err();
    match err {
        ClientError::Server { code, .. } => assert_eq!(code, ErrorCode::Engine),
        other => panic!("expected engine error, got {other}"),
    }
    assert_eq!(a.query("retrieve (kv.all)").unwrap().table.rows.len(), 60);
    assert_eq!(b.query("retrieve (kv.all)").unwrap().table.rows.len(), 60);

    let (stats, _engine) = handle.shutdown();
    assert_eq!(stats.engine_errors, 1);
    assert_eq!(stats.protocol_errors, 0);
}

#[test]
fn oversized_result_becomes_engine_error_not_desync() {
    let (addr, handle) = spawn_server(64);
    let mut c = Client::connect(addr).unwrap();
    c.command("create blob (id = int, body = str)").unwrap();

    // five ~1 MiB rows: each append frame fits, but the combined
    // retrieve result overflows the 4 MiB frame cap
    for i in 0..5i64 {
        let body = "x".repeat(1 << 20);
        let r = c
            .command(&format!("append blob (id = {i}, body = \"{body}\")"))
            .unwrap();
        assert_eq!(r.changes, 1);
    }

    let err = c.query("retrieve (blob.all)").unwrap_err();
    match err {
        ClientError::Server { code, message } => {
            assert_eq!(code, ErrorCode::Engine);
            assert!(
                message.contains("frame cap"),
                "message explains the cap: {message}"
            );
        }
        other => panic!("expected oversized-result error, got {other}"),
    }

    // the stream is still in sync: a narrower query succeeds
    let out = c.query("retrieve (blob.id)").unwrap();
    assert_eq!(out.table.rows.len(), 5, "session survives the oversize");

    drop(c);
    let (stats, _engine) = handle.shutdown();
    assert_eq!(stats.protocol_errors, 0, "no wire-level fault recorded");
}

#[test]
fn query_frame_rejects_non_retrieve() {
    let (addr, handle) = spawn_server(64);
    let mut c = Client::connect(addr).unwrap();
    let err = c.query("append kv (k = 1, v = 1)").unwrap_err();
    match err {
        ClientError::Server { code, message } => {
            assert_eq!(code, ErrorCode::Engine);
            assert!(
                message.contains("retrieve"),
                "message names the rule: {message}"
            );
        }
        other => panic!("expected engine error, got {other}"),
    }
    // session survives an engine-class error
    assert!(c.query("retrieve (kv.all)").is_ok());
    handle.shutdown();
}

#[test]
fn wire_level_violations_close_connection() {
    let (addr, handle) = spawn_server(64);

    // garbage opcode after a valid hello
    {
        let mut s = TcpStream::connect(addr).unwrap();
        write_frame(&mut s, Opcode::Hello, &encode_hello_client()).unwrap();
        let hello = read_frame(&mut s).unwrap();
        assert_eq!(hello.opcode, Opcode::Hello);
        s.write_all(&2u32.to_be_bytes()).unwrap();
        s.write_all(&[0xEE, 0x00]).unwrap();
        let reply = read_frame(&mut s).unwrap();
        assert_eq!(reply.opcode, Opcode::Error);
        // then the server hangs up
        assert!(read_frame(&mut s).is_err());
    }

    // oversized frame length is rejected before any payload is read
    {
        let mut s = TcpStream::connect(addr).unwrap();
        write_frame(&mut s, Opcode::Hello, &encode_hello_client()).unwrap();
        read_frame(&mut s).unwrap();
        s.write_all(&(MAX_FRAME_LEN + 1).to_be_bytes()).unwrap();
        let reply = read_frame(&mut s).unwrap();
        assert_eq!(reply.opcode, Opcode::Error);
    }

    // truncated frame: declared length, then hang up mid-body
    {
        let mut s = TcpStream::connect(addr).unwrap();
        write_frame(&mut s, Opcode::Hello, &encode_hello_client()).unwrap();
        read_frame(&mut s).unwrap();
        s.write_all(&100u32.to_be_bytes()).unwrap();
        s.write_all(&[Opcode::Command as u8, b'a']).unwrap();
        drop(s); // server should just reap the session, not wedge
    }

    // first frame not a hello
    {
        let mut s = TcpStream::connect(addr).unwrap();
        write_frame(&mut s, Opcode::Command, b"retrieve (kv.all)").unwrap();
        let reply = read_frame(&mut s).unwrap();
        assert_eq!(reply.opcode, Opcode::Error);
    }

    // wrong protocol version in hello
    {
        let mut s = TcpStream::connect(addr).unwrap();
        let bogus = (PROTOCOL_VERSION + 1).to_be_bytes();
        write_frame(&mut s, Opcode::Hello, &bogus).unwrap();
        let reply = read_frame(&mut s).unwrap();
        assert_eq!(reply.opcode, Opcode::Error);
    }

    // a healthy client still works after all of the above
    let mut c = Client::connect(addr).unwrap();
    c.command("append kv (k = 1, v = 1)").unwrap();
    assert_eq!(c.query("retrieve (kv.all)").unwrap().table.rows.len(), 1);

    let (stats, _engine) = handle.shutdown();
    assert!(
        stats.protocol_errors >= 4,
        "violations counted: {}",
        stats.protocol_errors
    );
}

#[test]
fn kill_client_mid_batch_keeps_engine_consistent() {
    let (addr, handle) = spawn_server(256);

    // one client hammers appends and is killed without reading replies;
    // frames fully received by the server must execute atomically
    let mut victim = TcpStream::connect(addr).unwrap();
    write_frame(&mut victim, Opcode::Hello, &encode_hello_client()).unwrap();
    read_frame(&mut victim).unwrap();
    for i in 0..40i64 {
        write_frame(
            &mut victim,
            Opcode::Command,
            format!("append kv (k = {i}, v = 100)").as_bytes(),
        )
        .unwrap();
    }
    // hard close with replies unread and possibly frames in flight
    drop(victim);

    // a healthy concurrent client keeps appending throughout
    let mut c = Client::connect(addr).unwrap();
    for i in 0..40i64 {
        c.command(&format!("append kv (k = {}, v = 100)", 1000 + i))
            .unwrap();
    }

    // consistency: every kv row above threshold has exactly one audit row
    let kv = c.query("retrieve (kv.all)").unwrap();
    let audit = c.query("retrieve (audit.all)").unwrap();
    assert_eq!(
        kv.table.rows.len(),
        audit.table.rows.len(),
        "each committed append fired the rule exactly once"
    );
    assert!(
        kv.table.rows.len() >= 40,
        "the healthy client's rows all landed"
    );

    let (stats, _engine) = handle.shutdown();
    assert_eq!(stats.engine_errors, 0);
}

#[test]
fn cross_session_append_batching() {
    // tiny poll quantum not needed: batching happens whenever readers
    // deposit while an executor holds the engine; many clients + many
    // appends makes that overwhelmingly likely, but we only assert on
    // what is guaranteed (correct totals, well-formed stats)
    let (addr, handle) = spawn_server(64);
    let mut threads = Vec::new();
    for t in 0..8i64 {
        threads.push(std::thread::spawn(move || {
            let mut c = Client::connect(addr).unwrap();
            for i in 0..50i64 {
                c.command(&format!("append kv (k = {}, v = {i})", t * 1000 + i))
                    .unwrap();
            }
        }));
    }
    for t in threads {
        t.join().unwrap();
    }
    let mut c = Client::connect(addr).unwrap();
    assert_eq!(c.query("retrieve (kv.all)").unwrap().table.rows.len(), 400);

    let (stats, _engine) = handle.shutdown();
    assert_eq!(stats.commands, 400);
    let grouped: u64 = stats.batch_hist.iter().sum();
    assert_eq!(grouped, stats.batches, "histogram covers every group");
    assert!(stats.max_batch >= 1);
    assert_eq!(stats.protocol_errors, 0);
}

#[test]
fn metrics_frame_reports_server_and_engine() {
    let (addr, handle) = spawn_server(64);
    let mut c = Client::connect(addr).unwrap();
    c.command("append kv (k = 1, v = 100)").unwrap();
    let json = c.metrics().unwrap();
    assert!(json.starts_with("{\"server\":{"), "got: {json}");
    assert!(json.contains("\"engine\":{"), "engine half present: {json}");
    assert!(
        json.contains("\"commands\":1"),
        "server half counts: {json}"
    );
    handle.shutdown();
}

#[test]
fn metrics_prom_frame_is_valid_exposition() {
    let (addr, handle) = spawn_server(64);
    let mut c = Client::connect(addr).unwrap();
    c.command("append kv (k = 1, v = 100)").unwrap();
    c.query("retrieve (kv.all)").unwrap();
    let text = c.metrics_prom().unwrap();
    for family in [
        "# TYPE ariel_server_sessions_total counter",
        "# TYPE ariel_server_requests_total counter",
        "# TYPE ariel_server_request_duration_ns histogram",
        "# TYPE ariel_server_batch_groups_total counter",
        "# TYPE ariel_wal_fsyncs_total counter",
        "# TYPE ariel_rule_firings_total counter",
        "# TYPE ariel_engine_firings_total counter",
    ] {
        assert!(text.contains(family), "missing {family:?} in:\n{text}");
    }
    // the one above-threshold append fired the audit rule once
    assert!(
        text.contains("ariel_rule_firings_total{rule=\"big\"} 1"),
        "per-rule firing counter: {text}"
    );
    // per-opcode latency histograms carry this session's two requests
    assert!(
        text.contains("ariel_server_request_duration_ns_count{opcode=\"command\"} 1"),
        "{text}"
    );
    assert!(
        text.contains("ariel_server_request_duration_ns_count{opcode=\"query\"} 1"),
        "{text}"
    );
    // every line is a comment or a `name{labels} value` sample
    for line in text.lines() {
        assert!(
            line.starts_with("# ") || line.split_whitespace().count() == 2,
            "malformed exposition line: {line:?}"
        );
    }
    handle.shutdown();
}

#[test]
fn http_get_metrics_shim_serves_prometheus() {
    let (addr, handle) = spawn_server(64);
    let mut c = Client::connect(addr).unwrap();
    c.command("append kv (k = 1, v = 100)").unwrap();

    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(b"GET /metrics HTTP/1.0\r\nHost: localhost\r\n\r\n")
        .unwrap();
    let mut response = String::new();
    s.read_to_string(&mut response).unwrap();
    assert!(
        response.starts_with("HTTP/1.0 200 OK\r\n"),
        "status line: {response}"
    );
    assert!(response.contains("Content-Type: text/plain"), "{response}");
    let body = response
        .split_once("\r\n\r\n")
        .expect("header/body separator")
        .1;
    assert!(body.contains("ariel_server_commands_total 1"), "{body}");
    assert!(
        body.contains("# TYPE ariel_engine_firings_total counter"),
        "{body}"
    );

    // the shim is not a session and breaks nothing for real clients
    assert_eq!(c.query("retrieve (kv.all)").unwrap().table.rows.len(), 1);
    let (stats, _engine) = handle.shutdown();
    assert_eq!(stats.protocol_errors, 0, "GET is not a protocol violation");
}

#[test]
fn slow_log_captures_slowest_under_16_client_load() {
    let options = ServerOptions {
        slow_capacity: 8,
        slow_threshold_ns: 0, // everything competes; the 8 slowest stay
        ..Default::default()
    };
    let (addr, handle) = spawn_server_with(64, options);
    let mut threads = Vec::new();
    for t in 0..16i64 {
        threads.push(std::thread::spawn(move || {
            let mut c = Client::connect(addr).unwrap();
            for i in 0..20i64 {
                c.command(&format!("append kv (k = {}, v = {i})", t * 1000 + i))
                    .unwrap();
            }
        }));
    }
    for t in threads {
        t.join().unwrap();
    }

    let mut c = Client::connect(addr).unwrap();
    let json = c.metrics().unwrap();
    assert!(json.contains("\"telemetry\":{"), "{json}");
    let slowlog = json.split_once("\"slowlog\":[").expect("slowlog section").1;
    let slowlog = &slowlog[..slowlog.find(']').expect("slowlog closes")];
    let entries = slowlog.matches("\"session\":").count();
    assert_eq!(entries, 8, "log holds exactly its capacity: {slowlog}");
    assert!(slowlog.contains("\"opcode\":\"command\""), "{slowlog}");
    assert!(slowlog.contains("\"dur_ns\":"), "{slowlog}");
    assert!(
        slowlog.contains("append kv"),
        "rendered ARL text: {slowlog}"
    );
    // per-session figures cover the 16 writers
    let sessions = json
        .split_once("\"sessions\":{")
        .expect("sessions section")
        .1;
    assert!(
        sessions.matches("\"requests\":").count() >= 16,
        "{sessions}"
    );
    handle.shutdown();
}

#[test]
fn telemetry_off_serves_but_records_nothing() {
    let options = ServerOptions {
        telemetry: false,
        ..Default::default()
    };
    let (addr, handle) = spawn_server_with(64, options);
    let mut c = Client::connect(addr).unwrap();
    c.command("append kv (k = 1, v = 100)").unwrap();
    let json = c.metrics().unwrap();
    assert!(json.contains("\"telemetry\":{\"enabled\":false"), "{json}");
    assert!(
        json.contains("\"opcodes\":{}"),
        "no per-opcode stats: {json}"
    );
    assert!(json.contains("\"slowlog\":[]"), "{json}");
    // plain server counters still work (they predate the telemetry layer)
    assert!(json.contains("\"commands\":1"), "{json}");
    let prom = c.metrics_prom().unwrap();
    assert!(prom.contains("ariel_server_commands_total 1"), "{prom}");
    handle.shutdown();
}

#[test]
fn notifications_reach_the_session() {
    let mut db = Ariel::with_options(EngineOptions::default());
    db.execute("create kv (k = int, v = int)").unwrap();
    db.execute("define rule watch if kv.v >= 100 then notify bigkv (kv.k, kv.v)")
        .unwrap();
    let server = Server::bind("127.0.0.1:0", db, ServerOptions::default()).unwrap();
    let addr = server.local_addr();
    let handle = server.spawn();

    let mut c = Client::connect(addr).unwrap();
    let quiet = c.command("append kv (k = 1, v = 5)").unwrap();
    assert!(quiet.notes.is_empty());
    let loud = c.command("append kv (k = 2, v = 200)").unwrap();
    assert_eq!(loud.notes.len(), 1, "notify rode back on the result frame");
    assert_eq!(loud.notes[0].0, "bigkv");
    assert_eq!(loud.notes[0].1.rows.len(), 1);
    handle.shutdown();
}

#[test]
fn client_initiated_shutdown_and_no_leaked_threads() {
    let (addr, handle) = spawn_server(64);
    let mut c = Client::connect(addr).unwrap();
    c.command("append kv (k = 1, v = 1)").unwrap();

    let before = thread_count();
    c.shutdown().unwrap();
    // join() returns only after every reader/executor/accept thread joined
    let (stats, _engine) = handle.join();
    assert_eq!(stats.sessions, 1);
    let after = thread_count();
    assert!(
        after <= before,
        "no threads outlive the server (before={before}, after={after})"
    );

    // the port is released
    assert!(
        TcpStream::connect(addr).is_err() || {
            // a racing TIME_WAIT accept is possible; a write must then fail
            let mut s = TcpStream::connect(addr).unwrap();
            write_frame(&mut s, Opcode::Hello, &encode_hello_client()).is_err()
                || read_frame(&mut s).is_err()
        }
    );
}

/// Count live threads in this process via /proc (linux-only, which is
/// where CI runs; elsewhere fall back to a constant so the assertion
/// trivially holds).
fn thread_count() -> usize {
    std::fs::read_dir("/proc/self/task")
        .map(|d| d.count())
        .unwrap_or(0)
}
