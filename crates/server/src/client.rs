//! A small blocking client for the Ariel wire protocol — used by the
//! REPL-side tests and the `paper_tables -- serve` load generator, and a
//! reference implementation for anyone speaking the protocol from
//! another language (the frame layout is documented in `docs/SERVER.md`).

use crate::protocol::{
    decode_error, decode_hello_server, encode_hello_client, read_frame, write_frame, ErrorCode,
    FrameError, Opcode, ResultBody,
};
use std::net::{TcpStream, ToSocketAddrs};

/// Client-side failure modes.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The server sent bytes that do not decode as a frame we expect.
    Frame(FrameError),
    /// The server answered with an `error` frame.
    Server {
        /// Error class (engine errors leave the session usable).
        code: ErrorCode,
        /// Human-readable message from the server.
        message: String,
    },
    /// The server broke the protocol (e.g. an unexpected opcode).
    Protocol(String),
    /// A frame that must carry UTF-8 text (metrics) did not.
    Utf8 {
        /// The opcode of the offending frame.
        opcode: Opcode,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Frame(e) => write!(f, "bad frame: {e}"),
            ClientError::Server { code, message } => {
                write!(f, "server error ({code:?}): {message}")
            }
            ClientError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            ClientError::Utf8 { opcode } => {
                write!(f, "non-UTF-8 payload in {opcode:?} frame")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Io(e) => ClientError::Io(e),
            other => ClientError::Frame(other),
        }
    }
}

/// A connected session. One request is in flight at a time: each method
/// writes a frame and blocks for the server's answer.
pub struct Client {
    stream: TcpStream,
    session: u32,
}

impl Client {
    /// Connect and run the `hello` handshake.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        write_frame(&mut stream, Opcode::Hello, &encode_hello_client())?;
        let frame = read_frame(&mut stream)?;
        match frame.opcode {
            Opcode::Hello => {
                let (_version, session) = decode_hello_server(&frame.payload)?;
                Ok(Client { stream, session })
            }
            Opcode::Error => Err(decode_error(&frame.payload).map_or_else(
                ClientError::from,
                |(code, message)| ClientError::Server { code, message },
            )),
            other => Err(ClientError::Protocol(format!(
                "expected hello reply, got {other:?}"
            ))),
        }
    }

    /// The session id the server assigned at handshake.
    pub fn session_id(&self) -> u32 {
        self.session
    }

    fn round_trip(&mut self, opcode: Opcode, payload: &[u8]) -> Result<ResultBody, ClientError> {
        write_frame(&mut self.stream, opcode, payload)?;
        let frame = read_frame(&mut self.stream)?;
        match frame.opcode {
            Opcode::Result => Ok(ResultBody::decode(&frame.payload)?),
            Opcode::Error => Err(decode_error(&frame.payload).map_or_else(
                ClientError::from,
                |(code, message)| ClientError::Server { code, message },
            )),
            other => Err(ClientError::Protocol(format!(
                "expected result or error, got {other:?}"
            ))),
        }
    }

    /// Run an ARL script (any commands; an all-append script executes as
    /// one transition and may be batched with other sessions' appends).
    pub fn command(&mut self, src: &str) -> Result<ResultBody, ClientError> {
        self.round_trip(Opcode::Command, src.as_bytes())
    }

    /// Run a single `retrieve` and return its table.
    pub fn query(&mut self, src: &str) -> Result<ResultBody, ClientError> {
        self.round_trip(Opcode::Query, src.as_bytes())
    }

    /// Fetch combined server + engine metrics as a JSON string.
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        self.metrics_round_trip(Opcode::Metrics)
    }

    /// Fetch the metrics snapshot in Prometheus text-exposition format.
    pub fn metrics_prom(&mut self) -> Result<String, ClientError> {
        self.metrics_round_trip(Opcode::MetricsProm)
    }

    /// Send a metrics request and decode the textual reply. Either
    /// metrics opcode is accepted back — a server may answer a JSON
    /// metrics request from an older client with the opcode it knows.
    fn metrics_round_trip(&mut self, request: Opcode) -> Result<String, ClientError> {
        write_frame(&mut self.stream, request, &[])?;
        let frame = read_frame(&mut self.stream)?;
        match frame.opcode {
            op @ (Opcode::Metrics | Opcode::MetricsProm) => {
                String::from_utf8(frame.payload).map_err(|_| ClientError::Utf8 { opcode: op })
            }
            Opcode::Error => Err(decode_error(&frame.payload).map_or_else(
                ClientError::from,
                |(code, message)| ClientError::Server { code, message },
            )),
            other => Err(ClientError::Protocol(format!(
                "expected metrics, got {other:?}"
            ))),
        }
    }

    /// Ask the server to shut down (acknowledged, then the connection is
    /// closed server-side).
    pub fn shutdown(mut self) -> Result<(), ClientError> {
        write_frame(&mut self.stream, Opcode::Shutdown, &[])?;
        let frame = read_frame(&mut self.stream)?;
        match frame.opcode {
            Opcode::Result => Ok(()),
            Opcode::Error => Err(decode_error(&frame.payload).map_or_else(
                ClientError::from,
                |(code, message)| ClientError::Server { code, message },
            )),
            other => Err(ClientError::Protocol(format!(
                "expected shutdown ack, got {other:?}"
            ))),
        }
    }

    /// The underlying stream, for tests that need to misbehave at the
    /// byte level (truncated frames, garbage opcodes, hard disconnects).
    pub fn stream_mut(&mut self) -> &mut TcpStream {
        &mut self.stream
    }
}
