//! The Ariel wire protocol: hand-rolled, length-prefixed, binary, and
//! blocking — no async runtime is available offline, and none is needed
//! for a protocol this small.
//!
//! ## Frame layout
//!
//! ```text
//! +-----------------+------------+----------------------+
//! | length: u32 BE  | opcode: u8 | payload (length - 1) |
//! +-----------------+------------+----------------------+
//! ```
//!
//! `length` counts the opcode byte plus the payload, so a valid frame has
//! `1 <= length <= MAX_FRAME_LEN`. A frame whose length field exceeds
//! [`MAX_FRAME_LEN`] is rejected *before* any payload is read — a garbage
//! length must not make the server allocate gigabytes or desync the
//! stream — and the connection is closed, because nothing after an
//! oversized header can be trusted.
//!
//! ## Opcodes
//!
//! | opcode | name     | direction | payload |
//! |-------:|----------|-----------|---------|
//! | `0x01` | hello    | both      | client: `version:u16`; server: `version:u16 session:u32` |
//! | `0x02` | command  | c → s     | UTF-8 ARL/POSTQUEL script |
//! | `0x03` | query    | c → s     | UTF-8 `retrieve …` source |
//! | `0x04` | result   | s → c     | [`ResultBody`] encoding below |
//! | `0x05` | error    | s → c     | `code:u8` + UTF-8 message |
//! | `0x06` | metrics  | both      | client: empty; server: UTF-8 JSON |
//! | `0x07` | shutdown | c → s     | empty |
//! | `0x08` | metrics-prom | both  | client: empty; server: UTF-8 Prometheus text exposition |
//!
//! `command` and `query` differ only in intent (the server counts them
//! separately and rejects a `query` that is not a `retrieve`); both are
//! answered with exactly one `result` or `error` frame. All multi-byte
//! integers are big-endian.
//!
//! ## Result body
//!
//! ```text
//! ResultBody := changes:u32 table notes
//! table      := ncols:u16 (col:str16)*  nrows:u32 (cell:str32 × ncols)*
//! notes      := n:u16 (channel:str16 table)*
//! str16      := len:u16 bytes   str32 := len:u32 bytes
//! ```
//!
//! Cells are the textual rendering of values (strings unquoted), so the
//! body round-trips through [`ResultBody::encode`]/[`ResultBody::decode`]
//! byte-identically — the unit tests below prove it, and the truncation
//! tests prove every early-EOF prefix is rejected rather than misread.

use std::io::{Read, Write};

/// Protocol version spoken by this build. The server rejects a `hello`
/// with a different major version.
pub const PROTOCOL_VERSION: u16 = 1;

/// Hard cap on `length` (opcode + payload). 4 MiB comfortably holds any
/// result the bench or tests produce while bounding a hostile header.
pub const MAX_FRAME_LEN: u32 = 4 << 20;

/// Frame opcodes (the `u8` after the length prefix).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Opcode {
    /// Session handshake (first frame in each direction).
    Hello = 0x01,
    /// Execute an ARL/POSTQUEL script.
    Command = 0x02,
    /// Execute a single `retrieve`.
    Query = 0x03,
    /// Successful reply to `command`/`query`/`shutdown`.
    Result = 0x04,
    /// Failed reply; payload is `code:u8` + message.
    Error = 0x05,
    /// Metrics request (client, empty) / snapshot (server, JSON).
    Metrics = 0x06,
    /// Ask the server to stop accepting and drain.
    Shutdown = 0x07,
    /// Metrics request (client, empty) / snapshot in Prometheus text
    /// exposition format (server, UTF-8).
    MetricsProm = 0x08,
}

impl Opcode {
    /// Decode an opcode byte.
    pub fn from_u8(b: u8) -> Option<Opcode> {
        match b {
            0x01 => Some(Opcode::Hello),
            0x02 => Some(Opcode::Command),
            0x03 => Some(Opcode::Query),
            0x04 => Some(Opcode::Result),
            0x05 => Some(Opcode::Error),
            0x06 => Some(Opcode::Metrics),
            0x07 => Some(Opcode::Shutdown),
            0x08 => Some(Opcode::MetricsProm),
            _ => None,
        }
    }
}

/// Error codes carried in `error` frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The engine rejected the command (parse/semantic/execution error).
    /// The session stays usable.
    Engine = 1,
    /// The client violated the protocol (bad opcode, bad handshake,
    /// malformed payload). The server closes the connection after sending.
    Protocol = 2,
    /// The server is shutting down and will not take further commands.
    ShuttingDown = 3,
}

impl ErrorCode {
    /// Decode an error-code byte (unknown codes map to `Protocol`).
    pub fn from_u8(b: u8) -> ErrorCode {
        match b {
            1 => ErrorCode::Engine,
            3 => ErrorCode::ShuttingDown,
            _ => ErrorCode::Protocol,
        }
    }
}

/// One decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// What the frame is.
    pub opcode: Opcode,
    /// Opcode-specific body (may be empty).
    pub payload: Vec<u8>,
}

/// Everything that can go wrong reading or decoding a frame.
#[derive(Debug)]
pub enum FrameError {
    /// Underlying socket/file error (includes timeouts).
    Io(std::io::Error),
    /// EOF in the middle of a frame (header or payload).
    Truncated,
    /// `length` was zero (a frame must at least carry an opcode).
    Empty,
    /// `length` exceeded [`MAX_FRAME_LEN`].
    Oversized(u32),
    /// The opcode byte is not one of the defined opcodes.
    BadOpcode(u8),
    /// The payload did not decode as the opcode's body.
    BadPayload(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "i/o error: {e}"),
            FrameError::Truncated => write!(f, "truncated frame"),
            FrameError::Empty => write!(f, "zero-length frame"),
            FrameError::Oversized(n) => {
                write!(f, "frame length {n} exceeds maximum {MAX_FRAME_LEN}")
            }
            FrameError::BadOpcode(b) => write!(f, "unknown opcode 0x{b:02x}"),
            FrameError::BadPayload(m) => write!(f, "malformed payload: {m}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            FrameError::Truncated
        } else {
            FrameError::Io(e)
        }
    }
}

impl FrameError {
    /// `true` when the error is a read timeout rather than a real fault —
    /// the session manager's poll quantum, not a protocol violation.
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            FrameError::Io(e) if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            )
        )
    }
}

/// Write one frame: `u32` length, opcode byte, payload. A payload that
/// would exceed [`MAX_FRAME_LEN`] is rejected with `InvalidData` and
/// *nothing* is written: the peer rejects oversized lengths before
/// reading the body and closes, so emitting such a frame would desync
/// the stream. Callers producing unbounded payloads (result tables)
/// should downgrade via [`encode_result_frame`] instead of failing.
pub fn write_frame(w: &mut impl Write, opcode: Opcode, payload: &[u8]) -> std::io::Result<()> {
    let len = 1 + payload.len() as u64;
    if len > MAX_FRAME_LEN as u64 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME_LEN}-byte cap"),
        ));
    }
    // one buffered write per frame so a frame is never interleaved with
    // another writer's bytes at the syscall level
    let mut buf = Vec::with_capacity(5 + payload.len());
    buf.extend_from_slice(&(len as u32).to_be_bytes());
    buf.push(opcode as u8);
    buf.extend_from_slice(payload);
    w.write_all(&buf)
}

/// Frame a result body, downgrading one too large for a single frame to
/// an `error` frame that names the overflow. The error carries
/// [`ErrorCode::Engine`] — the request failed, but the stream stays in
/// sync and the session stays usable.
pub fn encode_result_frame(body: &ResultBody) -> (Opcode, Vec<u8>) {
    let payload = body.encode();
    if 1 + payload.len() as u64 > MAX_FRAME_LEN as u64 {
        let msg = format!(
            "result of {} bytes exceeds the {MAX_FRAME_LEN}-byte frame cap; narrow the query",
            payload.len()
        );
        (Opcode::Error, encode_error(ErrorCode::Engine, &msg))
    } else {
        (Opcode::Result, payload)
    }
}

/// Read one frame. Validates the length bound *before* reading the body
/// and the opcode byte after, so garbage input fails fast and explicitly.
pub fn read_frame(r: &mut impl Read) -> Result<Frame, FrameError> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    let len = u32::from_be_bytes(len_buf);
    if len == 0 {
        return Err(FrameError::Empty);
    }
    if len > MAX_FRAME_LEN {
        return Err(FrameError::Oversized(len));
    }
    let mut op = [0u8; 1];
    r.read_exact(&mut op)?;
    let opcode = Opcode::from_u8(op[0]).ok_or(FrameError::BadOpcode(op[0]))?;
    let mut payload = vec![0u8; len as usize - 1];
    r.read_exact(&mut payload)?;
    Ok(Frame { opcode, payload })
}

// ----- body encodings ------------------------------------------------------

fn put_str16(buf: &mut Vec<u8>, s: &str) {
    let len = s.len().min(u16::MAX as usize) as u16;
    buf.extend_from_slice(&len.to_be_bytes());
    buf.extend_from_slice(&s.as_bytes()[..len as usize]);
}

fn put_str32(buf: &mut Vec<u8>, s: &str) {
    buf.extend_from_slice(&(s.len() as u32).to_be_bytes());
    buf.extend_from_slice(s.as_bytes());
}

/// Cursor over a payload being decoded; every read is bounds-checked so a
/// truncated or lying body yields `BadPayload`, never a panic or misread.
struct Cur<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.b.len())
            .ok_or_else(|| FrameError::BadPayload(format!("{n} bytes past end of payload")))?;
        let s = &self.b[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, FrameError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, FrameError> {
        Ok(u16::from_be_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, FrameError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn str16(&mut self) -> Result<String, FrameError> {
        let n = self.u16()? as usize;
        String::from_utf8(self.take(n)?.to_vec()).map_err(|e| FrameError::BadPayload(e.to_string()))
    }

    fn str32(&mut self) -> Result<String, FrameError> {
        let n = self.u32()? as usize;
        String::from_utf8(self.take(n)?.to_vec()).map_err(|e| FrameError::BadPayload(e.to_string()))
    }

    fn done(&self) -> Result<(), FrameError> {
        if self.pos == self.b.len() {
            Ok(())
        } else {
            Err(FrameError::BadPayload(format!(
                "{} trailing bytes",
                self.b.len() - self.pos
            )))
        }
    }
}

/// A rendered result table: column names plus rows of cell text.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Table {
    /// Column names (empty for DML results).
    pub columns: Vec<String>,
    /// One rendered cell per column per row.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    fn encode_into(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&(self.columns.len() as u16).to_be_bytes());
        for c in &self.columns {
            put_str16(buf, c);
        }
        buf.extend_from_slice(&(self.rows.len() as u32).to_be_bytes());
        for row in &self.rows {
            debug_assert_eq!(row.len(), self.columns.len());
            for cell in row {
                put_str32(buf, cell);
            }
        }
    }

    fn decode_from(cur: &mut Cur<'_>) -> Result<Table, FrameError> {
        let ncols = cur.u16()? as usize;
        let mut columns = Vec::with_capacity(ncols.min(1024));
        for _ in 0..ncols {
            columns.push(cur.str16()?);
        }
        let nrows = cur.u32()? as usize;
        let mut rows = Vec::new();
        for _ in 0..nrows {
            let mut row = Vec::with_capacity(ncols);
            for _ in 0..ncols {
                row.push(cur.str32()?);
            }
            rows.push(row);
        }
        Ok(Table { columns, rows })
    }
}

/// Body of a `result` frame: how many physical changes the request made,
/// the result table (for `retrieve`), and any rule notifications raised
/// while the request's transition ran.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ResultBody {
    /// Number of physical changes (inserted/deleted/replaced tuples).
    pub changes: u32,
    /// Result rows (`retrieve` only; empty otherwise).
    pub table: Table,
    /// `(channel, table)` per notification delivered to this session.
    pub notes: Vec<(String, Table)>,
}

impl ResultBody {
    /// Encode to a `result` payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(16);
        buf.extend_from_slice(&self.changes.to_be_bytes());
        self.table.encode_into(&mut buf);
        buf.extend_from_slice(&(self.notes.len() as u16).to_be_bytes());
        for (channel, table) in &self.notes {
            put_str16(&mut buf, channel);
            table.encode_into(&mut buf);
        }
        buf
    }

    /// Decode a `result` payload; rejects truncated or trailing bytes.
    pub fn decode(payload: &[u8]) -> Result<ResultBody, FrameError> {
        let mut cur = Cur { b: payload, pos: 0 };
        let changes = cur.u32()?;
        let table = Table::decode_from(&mut cur)?;
        let n_notes = cur.u16()? as usize;
        let mut notes = Vec::with_capacity(n_notes.min(1024));
        for _ in 0..n_notes {
            let channel = cur.str16()?;
            notes.push((channel, Table::decode_from(&mut cur)?));
        }
        cur.done()?;
        Ok(ResultBody {
            changes,
            table,
            notes,
        })
    }
}

/// Encode an `error` payload.
pub fn encode_error(code: ErrorCode, message: &str) -> Vec<u8> {
    let mut buf = Vec::with_capacity(1 + message.len());
    buf.push(code as u8);
    buf.extend_from_slice(message.as_bytes());
    buf
}

/// Decode an `error` payload into `(code, message)`.
pub fn decode_error(payload: &[u8]) -> Result<(ErrorCode, String), FrameError> {
    let mut cur = Cur { b: payload, pos: 0 };
    let code = ErrorCode::from_u8(cur.u8()?);
    let msg = String::from_utf8(payload[1..].to_vec())
        .map_err(|e| FrameError::BadPayload(e.to_string()))?;
    Ok((code, msg))
}

/// Encode the client half of a `hello` payload.
pub fn encode_hello_client() -> Vec<u8> {
    PROTOCOL_VERSION.to_be_bytes().to_vec()
}

/// Decode the client half of a `hello` payload.
pub fn decode_hello_client(payload: &[u8]) -> Result<u16, FrameError> {
    let mut cur = Cur { b: payload, pos: 0 };
    let v = cur.u16()?;
    cur.done()?;
    Ok(v)
}

/// Encode the server half of a `hello` payload.
pub fn encode_hello_server(session: u32) -> Vec<u8> {
    let mut buf = Vec::with_capacity(6);
    buf.extend_from_slice(&PROTOCOL_VERSION.to_be_bytes());
    buf.extend_from_slice(&session.to_be_bytes());
    buf
}

/// Decode the server half of a `hello` payload into `(version, session)`.
pub fn decode_hello_server(payload: &[u8]) -> Result<(u16, u32), FrameError> {
    let mut cur = Cur { b: payload, pos: 0 };
    let v = cur.u16()?;
    let s = cur.u32()?;
    cur.done()?;
    Ok((v, s))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn roundtrip_frame(opcode: Opcode, payload: &[u8]) -> Frame {
        let mut buf = Vec::new();
        write_frame(&mut buf, opcode, payload).unwrap();
        read_frame(&mut Cursor::new(buf)).unwrap()
    }

    #[test]
    fn frame_roundtrip_every_opcode() {
        for op in [
            Opcode::Hello,
            Opcode::Command,
            Opcode::Query,
            Opcode::Result,
            Opcode::Error,
            Opcode::Metrics,
            Opcode::Shutdown,
            Opcode::MetricsProm,
        ] {
            let f = roundtrip_frame(op, b"payload bytes");
            assert_eq!(f.opcode, op);
            assert_eq!(f.payload, b"payload bytes");
        }
        let f = roundtrip_frame(Opcode::Shutdown, b"");
        assert!(f.payload.is_empty());
    }

    #[test]
    fn truncated_frames_rejected_at_every_prefix() {
        let mut buf = Vec::new();
        write_frame(&mut buf, Opcode::Command, b"append t (x = 1)").unwrap();
        // every strict prefix must fail with Truncated, never misread
        for cut in 0..buf.len() {
            let err = read_frame(&mut Cursor::new(&buf[..cut])).unwrap_err();
            assert!(
                matches!(err, FrameError::Truncated),
                "prefix {cut}: {err:?}"
            );
        }
        // and the full buffer still parses
        assert!(read_frame(&mut Cursor::new(&buf)).is_ok());
    }

    #[test]
    fn oversized_length_rejected_before_payload_read() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME_LEN + 1).to_be_bytes());
        // no payload present at all: the length check must fire first
        let err = read_frame(&mut Cursor::new(buf)).unwrap_err();
        assert!(matches!(err, FrameError::Oversized(n) if n == MAX_FRAME_LEN + 1));
    }

    #[test]
    fn oversized_write_is_an_error_and_writes_nothing() {
        let payload = vec![0u8; MAX_FRAME_LEN as usize]; // +1 opcode byte tips it over
        let mut buf = Vec::new();
        let err = write_frame(&mut buf, Opcode::Result, &payload).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(
            buf.is_empty(),
            "a rejected frame must not desync the stream"
        );
        // one byte under the cap still goes through
        let ok = vec![0u8; MAX_FRAME_LEN as usize - 1];
        write_frame(&mut buf, Opcode::Result, &ok).unwrap();
        let f = read_frame(&mut Cursor::new(&buf)).unwrap();
        assert_eq!(f.payload.len(), ok.len());
    }

    #[test]
    fn oversized_result_body_downgrades_to_error_frame() {
        let body = ResultBody {
            changes: 0,
            table: Table {
                columns: vec!["x".into()],
                rows: (0..5).map(|_| vec!["y".repeat(1 << 20)]).collect(),
            },
            notes: vec![],
        };
        let (op, payload) = encode_result_frame(&body);
        assert_eq!(op, Opcode::Error);
        let (code, msg) = decode_error(&payload).unwrap();
        assert_eq!(code, ErrorCode::Engine);
        assert!(msg.contains("exceeds"), "{msg}");
        // the downgraded frame itself fits on the wire
        let mut buf = Vec::new();
        write_frame(&mut buf, op, &payload).unwrap();
        assert!(read_frame(&mut Cursor::new(&buf)).is_ok());
        // a small body passes through untouched
        let small = ResultBody::default();
        let (op, payload) = encode_result_frame(&small);
        assert_eq!(op, Opcode::Result);
        assert_eq!(ResultBody::decode(&payload).unwrap(), small);
    }

    #[test]
    fn zero_length_and_garbage_opcode_rejected() {
        let err = read_frame(&mut Cursor::new(0u32.to_be_bytes())).unwrap_err();
        assert!(matches!(err, FrameError::Empty));

        let mut buf = Vec::new();
        buf.extend_from_slice(&2u32.to_be_bytes());
        buf.push(0xEE); // not an opcode
        buf.push(0x00);
        let err = read_frame(&mut Cursor::new(buf)).unwrap_err();
        assert!(matches!(err, FrameError::BadOpcode(0xEE)));
    }

    #[test]
    fn result_body_roundtrip() {
        let body = ResultBody {
            changes: 3,
            table: Table {
                columns: vec!["name".into(), "sal".into()],
                rows: vec![
                    vec!["alice".into(), "42000".into()],
                    vec!["bob".into(), "".into()],
                ],
            },
            notes: vec![(
                "chan".into(),
                Table {
                    columns: vec!["x".into()],
                    rows: vec![vec!["5".into()]],
                },
            )],
        };
        let enc = body.encode();
        assert_eq!(ResultBody::decode(&enc).unwrap(), body);

        // the empty body also round-trips
        let empty = ResultBody::default();
        assert_eq!(ResultBody::decode(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn result_body_rejects_truncation_and_trailing_garbage() {
        let body = ResultBody {
            changes: 1,
            table: Table {
                columns: vec!["x".into()],
                rows: vec![vec!["1".into()]],
            },
            notes: vec![],
        };
        let enc = body.encode();
        for cut in 0..enc.len() {
            assert!(
                ResultBody::decode(&enc[..cut]).is_err(),
                "prefix {cut} decoded"
            );
        }
        let mut trailing = enc.clone();
        trailing.push(0);
        assert!(matches!(
            ResultBody::decode(&trailing),
            Err(FrameError::BadPayload(_))
        ));
    }

    #[test]
    fn error_and_hello_bodies_roundtrip() {
        let enc = encode_error(ErrorCode::Engine, "no such relation `emp`");
        let (code, msg) = decode_error(&enc).unwrap();
        assert_eq!(code, ErrorCode::Engine);
        assert_eq!(msg, "no such relation `emp`");

        assert_eq!(
            decode_hello_client(&encode_hello_client()).unwrap(),
            PROTOCOL_VERSION
        );
        let (v, s) = decode_hello_server(&encode_hello_server(7)).unwrap();
        assert_eq!((v, s), (PROTOCOL_VERSION, 7));
        // hello bodies reject trailing bytes
        let mut bad = encode_hello_client();
        bad.push(0);
        assert!(decode_hello_client(&bad).is_err());
    }

    #[test]
    fn non_utf8_payload_is_bad_payload() {
        let mut buf = Vec::new();
        buf.push(1); // ErrorCode::Engine
        buf.extend_from_slice(&[0xFF, 0xFE]);
        assert!(matches!(decode_error(&buf), Err(FrameError::BadPayload(_))));
    }
}
