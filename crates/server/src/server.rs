//! The server: accept loop, per-connection reader threads, and a
//! `scoped-pool` executor stage that multiplexes every session's requests
//! onto the one engine with per-transition write batching.
//!
//! ## Threading model
//!
//! ```text
//! accept thread ──spawns──> reader (1 per connection, blocking I/O)
//!                               │ parse frame + script, enqueue Entry
//!                               ▼
//!                        request queue (FIFO, Mutex + Condvar)
//!                               │ pop; pop further *consecutive*
//!                               │ append-only entries → one group
//!                               ▼
//!                    executor workers (vendor/scoped-pool, N = workers)
//!                               │ one Mutex<Ariel>: group → ONE transition
//!                               ▼
//!                        reply channel → reader writes the result frame
//! ```
//!
//! Readers own their socket for both directions, so no frame is ever
//! interleaved at the byte level and a session's replies are in request
//! order (a reader does not read the next frame until the previous reply
//! is on the wire — clients may still pipeline; extra frames just wait in
//! the kernel buffer). Executors never touch a socket, so the engine lock
//! is never held across a blocking network write.
//!
//! ## Write batching
//!
//! An entry whose commands are all plain `append`s is *batchable*. An
//! executor that pops one keeps popping while the queue front stays
//! batchable, up to [`ariel::EngineOptions::serve_batch`] commands, and runs the
//! whole group through [`Ariel::execute_transition`] — one Δ-set, one
//! recognize-act cycle, and one long positive token run, which is exactly
//! the shape `Network::process_batch` carves into parallel jobs when the
//! parallel match path is on. Each session is acked with its own change
//! counts. Two semantic consequences, both documented in
//! `docs/SERVER.md`: a batched group forms a single logical-event
//! transition (concurrent clients' appends may merge net effects), and a
//! notification raised by a batched transition is delivered to every
//! session in the group. If a grouped transition fails, the group is
//! re-run entry by entry so one session's bad command cannot poison
//! another session's good one.

use crate::protocol::{
    decode_hello_client, encode_error, encode_hello_server, encode_result_frame, write_frame,
    ErrorCode, Opcode, ResultBody, Table, MAX_FRAME_LEN, PROTOCOL_VERSION,
};
use crate::telemetry::{opcode_label, LogLevel, Logger, Telemetry};
use ariel::query::{parse_command, parse_script, CmdOutput, Command};
use ariel::storage::Value;
use ariel::Ariel;
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// How long a blocked read/accept waits before re-checking the shutdown
/// flag. Purely a shutdown-latency bound — frames are handled the moment
/// they arrive, because every connection has a dedicated reader.
const POLL_QUANTUM: Duration = Duration::from_millis(25);

/// Bound on a reply write to a stalled client; past it the session is
/// dropped so a dead peer cannot wedge its reader thread forever.
const WRITE_TIMEOUT: Duration = Duration::from_secs(5);

/// Server configuration (the engine's own knobs live in
/// [`ariel::EngineOptions`]).
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Executor worker threads; 0 = one per available core, capped at 8
    /// (the engine lock serializes transitions, so more buys nothing).
    pub workers: usize,
    /// Record per-opcode/per-session latency telemetry and the slow log
    /// (default `true`; off means no clock reads on the request path).
    pub telemetry: bool,
    /// Slow-command log capacity (the N slowest commands kept).
    pub slow_capacity: usize,
    /// Slow-command threshold in nanoseconds (0 = every command
    /// competes for a slow-log slot, but nothing is *logged* as slow).
    pub slow_threshold_ns: u64,
    /// Structured-logging verbosity (`--log-level`); default off.
    pub log_level: LogLevel,
    /// Structured-logging destination (`--log-file`); `None` = stderr.
    pub log_file: Option<std::path::PathBuf>,
}

impl Default for ServerOptions {
    fn default() -> ServerOptions {
        ServerOptions {
            workers: 0,
            telemetry: true,
            slow_capacity: 32,
            slow_threshold_ns: 0,
            log_level: LogLevel::Off,
            log_file: None,
        }
    }
}

/// Buckets of the batch-size histogram: group sizes (in *entries*) of
/// 1, 2, 3–4, 5–8, 9–16 and 17+.
pub const BATCH_BUCKETS: usize = 6;

/// Counters the server accumulates while running; snapshot via
/// [`Server::run`]'s return value or the `metrics` frame.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Sessions accepted over the server's lifetime.
    pub sessions: u64,
    /// `command` frames answered (with `result` or engine `error`).
    pub commands: u64,
    /// `query` frames answered.
    pub queries: u64,
    /// Engine-level errors returned (session kept).
    pub engine_errors: u64,
    /// Protocol violations (connection closed).
    pub protocol_errors: u64,
    /// Combined transitions executed (groups, including size-1 groups).
    pub batches: u64,
    /// Requests that rode in a group of ≥ 2 (cross-session coalescing).
    pub batched_requests: u64,
    /// Largest group executed, in entries.
    pub max_batch: u64,
    /// Histogram over group sizes; see [`BATCH_BUCKETS`].
    pub batch_hist: [u64; BATCH_BUCKETS],
}

impl ServerStats {
    /// Render the server half of the `metrics` frame.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"sessions\":{},\"commands\":{},\"queries\":{},\"engine_errors\":{},\
             \"protocol_errors\":{},\"batches\":{},\"batched_requests\":{},\
             \"max_batch\":{},\"batch_hist\":[{}]}}",
            self.sessions,
            self.commands,
            self.queries,
            self.engine_errors,
            self.protocol_errors,
            self.batches,
            self.batched_requests,
            self.max_batch,
            self.batch_hist
                .iter()
                .map(u64::to_string)
                .collect::<Vec<_>>()
                .join(",")
        )
    }
}

/// Histogram bucket for a group of `n` entries.
fn bucket(n: usize) -> usize {
    match n {
        0 | 1 => 0,
        2 => 1,
        3..=4 => 2,
        5..=8 => 3,
        9..=16 => 4,
        _ => 5,
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReqKind {
    Command,
    Query,
}

/// One parsed request waiting for an executor.
struct Entry {
    cmds: Vec<Command>,
    /// All commands are plain `append`s — eligible for group coalescing.
    batchable: bool,
    reply: mpsc::Sender<(Opcode, Vec<u8>)>,
}

#[derive(Default)]
struct Queue {
    entries: VecDeque<Entry>,
}

struct Shared {
    /// `None` only after [`Server::run`] has taken the engine back out,
    /// which happens strictly after every thread that could lock it joined.
    engine: Mutex<Option<Ariel>>,
    queue: Mutex<Queue>,
    queue_cv: Condvar,
    shutdown: AtomicBool,
    serve_batch: usize,
    next_session: AtomicU32,
    sessions: AtomicU64,
    commands: AtomicU64,
    queries: AtomicU64,
    engine_errors: AtomicU64,
    protocol_errors: AtomicU64,
    batch: Mutex<BatchStats>,
    telemetry: Telemetry,
    logger: Logger,
}

#[derive(Default)]
struct BatchStats {
    batches: u64,
    batched_requests: u64,
    max_batch: u64,
    hist: [u64; BATCH_BUCKETS],
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl Shared {
    fn stats(&self) -> ServerStats {
        let b = lock(&self.batch);
        ServerStats {
            sessions: self.sessions.load(Ordering::Relaxed),
            commands: self.commands.load(Ordering::Relaxed),
            queries: self.queries.load(Ordering::Relaxed),
            engine_errors: self.engine_errors.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            batches: b.batches,
            batched_requests: b.batched_requests,
            max_batch: b.max_batch,
            batch_hist: b.hist,
        }
    }

    fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.queue_cv.notify_all();
    }

    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }
}

/// A bound, not-yet-running server. [`Server::run`] blocks the calling
/// thread until shutdown; [`Server::spawn`] runs it on a background
/// thread and returns a [`ServerHandle`].
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    shared: Arc<Shared>,
    workers: usize,
}

/// A failed [`Server::bind`]. Carries the engine back out so a bind
/// failure (port in use, bad address) never costs the caller its
/// database — the REPL's `\serve` relies on this to keep its state.
pub struct BindError {
    /// The underlying socket error.
    pub source: std::io::Error,
    /// The engine handed to [`Server::bind`], returned unharmed
    /// (boxed: the engine is large and this is the cold path).
    pub engine: Box<Ariel>,
}

impl std::fmt::Debug for BindError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BindError")
            .field("source", &self.source)
            .finish_non_exhaustive()
    }
}

impl std::fmt::Display for BindError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cannot bind: {}", self.source)
    }
}

impl std::error::Error for BindError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

impl Server {
    /// Bind `addr` (use port 0 for an ephemeral port) and wrap `engine`.
    /// The engine's [`ariel::EngineOptions::serve_batch`] sets the coalescing
    /// bound. On failure the engine rides back in the error.
    pub fn bind(
        addr: impl ToSocketAddrs,
        engine: Ariel,
        options: ServerOptions,
    ) -> Result<Server, BindError> {
        let listener = match TcpListener::bind(addr).and_then(|l| {
            let addr = l.local_addr()?;
            Ok((l, addr))
        }) {
            Ok(pair) => pair,
            Err(source) => {
                return Err(BindError {
                    source,
                    engine: Box::new(engine),
                })
            }
        };
        let (listener, addr) = listener;
        let logger = match (&options.log_file, options.log_level) {
            (_, LogLevel::Off) => Logger::off(),
            (Some(path), level) => match Logger::file(level, path) {
                Ok(l) => l,
                Err(source) => {
                    return Err(BindError {
                        source,
                        engine: Box::new(engine),
                    })
                }
            },
            (None, level) => Logger::stderr(level),
        };
        let telemetry = Telemetry::new(
            options.telemetry,
            options.slow_capacity,
            options.slow_threshold_ns,
        );
        let serve_batch = engine.options().serve_batch.max(1);
        let workers = match options.workers {
            0 => std::thread::available_parallelism().map_or(2, |n| n.get().min(8)),
            n => n,
        };
        Ok(Server {
            listener,
            addr,
            shared: Arc::new(Shared {
                engine: Mutex::new(Some(engine)),
                queue: Mutex::new(Queue::default()),
                queue_cv: Condvar::new(),
                shutdown: AtomicBool::new(false),
                serve_batch,
                next_session: AtomicU32::new(1),
                sessions: AtomicU64::new(0),
                commands: AtomicU64::new(0),
                queries: AtomicU64::new(0),
                engine_errors: AtomicU64::new(0),
                protocol_errors: AtomicU64::new(0),
                batch: Mutex::new(BatchStats::default()),
                telemetry,
                logger,
            }),
            workers,
        })
    }

    /// The bound address (the actual port when bound with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Serve until a client sends `shutdown` (or a handle requests it).
    /// Returns the accumulated stats and the engine, whose state survives
    /// the server — `\serve` hands the REPL database to a server and gets
    /// it back when the server stops.
    pub fn run(self) -> (ServerStats, Ariel) {
        let shared = Arc::clone(&self.shared);
        self.listener
            .set_nonblocking(true)
            .expect("listener nonblocking");
        let readers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> =
            Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let shared = Arc::clone(&shared);
            let readers = Arc::clone(&readers);
            let listener = self.listener;
            std::thread::Builder::new()
                .name("ariel-accept".into())
                .spawn(move || accept_loop(&listener, &shared, &readers))
                .expect("spawn accept thread")
        };
        // the executor stage: scoped-pool workers looping until shutdown
        let pool = scoped_pool::Pool::new(self.workers);
        pool.run(self.workers, &|_w| executor_loop(&shared));
        drop(pool); // joins the workers
        let _ = accept.join();
        for r in lock(&readers).drain(..) {
            let _ = r.join();
        }
        let stats = shared.stats();
        let engine = lock(&shared.engine)
            .take()
            .expect("engine is taken back exactly once, at the end of run()");
        (stats, engine)
    }

    /// Run on a background thread; the handle can stop the server and
    /// collect its stats (and engine) without a client connection.
    pub fn spawn(self) -> ServerHandle {
        let addr = self.addr;
        let shared = Arc::clone(&self.shared);
        let join = std::thread::Builder::new()
            .name("ariel-server".into())
            .spawn(move || self.run())
            .expect("spawn server thread");
        ServerHandle { addr, shared, join }
    }
}

/// Handle to a [`Server::spawn`]ed server.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    join: std::thread::JoinHandle<(ServerStats, Ariel)>,
}

impl ServerHandle {
    /// The server's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Request shutdown and join every server thread. Returns the final
    /// stats and the engine.
    pub fn shutdown(self) -> (ServerStats, Ariel) {
        self.shared.request_shutdown();
        self.join.join().expect("server thread panicked")
    }

    /// Wait for a client-initiated shutdown.
    pub fn join(self) -> (ServerStats, Ariel) {
        self.join.join().expect("server thread panicked")
    }
}

// ----- accept --------------------------------------------------------------

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    readers: &Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
) {
    loop {
        if shared.shutting_down() {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let id = shared.next_session.fetch_add(1, Ordering::Relaxed);
                shared.sessions.fetch_add(1, Ordering::Relaxed);
                let shared = Arc::clone(shared);
                let handle = std::thread::Builder::new()
                    .name(format!("ariel-session-{id}"))
                    .spawn(move || reader_loop(stream, id, &shared))
                    .expect("spawn session reader");
                lock(readers).push(handle);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

// ----- reader (one per session) -------------------------------------------

/// Outcome of reading one frame off a session socket.
enum ReadOutcome {
    Frame(Opcode, Vec<u8>),
    /// Peer closed at a frame boundary.
    Closed,
    /// Server is shutting down (noticed at an idle poll tick).
    Shutdown,
    /// Protocol violation; the message is sent back before closing.
    Violation(String),
    /// Unrecoverable socket error.
    Io,
}

/// Read exactly `buf.len()` bytes, tolerating poll-quantum timeouts
/// (re-checking the shutdown flag at each) without ever losing bytes —
/// unlike `read_exact`, a timeout here resumes where it left off.
fn read_full(stream: &mut TcpStream, buf: &mut [u8], shared: &Shared) -> Result<bool, ReadOutcome> {
    let mut off = 0;
    while off < buf.len() {
        match stream.read(&mut buf[off..]) {
            Ok(0) => {
                return Err(if off == 0 {
                    ReadOutcome::Closed
                } else {
                    ReadOutcome::Violation("truncated frame".into())
                });
            }
            Ok(n) => off += n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if shared.shutting_down() {
                    return Err(ReadOutcome::Shutdown);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return Err(ReadOutcome::Io),
        }
    }
    Ok(true)
}

fn read_session_frame(stream: &mut TcpStream, shared: &Shared) -> ReadOutcome {
    let mut len_buf = [0u8; 4];
    if let Err(out) = read_full(stream, &mut len_buf, shared) {
        return out;
    }
    read_frame_body(stream, u32::from_be_bytes(len_buf), shared)
}

/// Read the rest of a frame whose 4-byte length prefix is already in hand
/// (the handshake reads the prefix itself so it can sniff `GET ` first).
fn read_frame_body(stream: &mut TcpStream, len: u32, shared: &Shared) -> ReadOutcome {
    if len == 0 {
        return ReadOutcome::Violation("zero-length frame".into());
    }
    if len > MAX_FRAME_LEN {
        return ReadOutcome::Violation(format!(
            "frame length {len} exceeds maximum {MAX_FRAME_LEN}"
        ));
    }
    let mut body = vec![0u8; len as usize];
    if let Err(out) = read_full(stream, &mut body, shared) {
        return out;
    }
    let Some(opcode) = Opcode::from_u8(body[0]) else {
        return ReadOutcome::Violation(format!("unknown opcode 0x{:02x}", body[0]));
    };
    body.remove(0);
    ReadOutcome::Frame(opcode, body)
}

fn send(stream: &mut TcpStream, opcode: Opcode, payload: &[u8]) -> bool {
    write_frame(stream, opcode, payload).is_ok()
}

fn protocol_error(stream: &mut TcpStream, shared: &Shared, msg: &str) {
    shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
    let _ = send(
        stream,
        Opcode::Error,
        &encode_error(ErrorCode::Protocol, msg),
    );
    // connection closes when the reader returns
}

fn reader_loop(stream: TcpStream, session: u32, shared: &Arc<Shared>) {
    let hello_done = reader_session(stream, session, shared);
    if hello_done {
        shared.logger.log(
            LogLevel::Info,
            "disconnect",
            format_args!("session={session}"),
        );
    }
}

/// Drive one session to completion. Returns whether the handshake
/// completed (so the wrapper logs `disconnect` only for real sessions).
fn reader_session(mut stream: TcpStream, session: u32, shared: &Arc<Shared>) -> bool {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL_QUANTUM));
    let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));

    // handshake: the first frame must be a hello with our version — but
    // sniff the first 4 bytes first: an HTTP `GET ` (0x47455420, far past
    // MAX_FRAME_LEN as a length prefix) is the Prometheus scrape shim
    let mut len_buf = [0u8; 4];
    if let Err(out) = read_full(&mut stream, &mut len_buf, shared) {
        if let ReadOutcome::Violation(msg) = out {
            protocol_error(&mut stream, shared, &msg);
        }
        return false;
    }
    if &len_buf == b"GET " {
        serve_http_metrics(&mut stream, session, shared);
        return false;
    }
    match read_frame_body(&mut stream, u32::from_be_bytes(len_buf), shared) {
        ReadOutcome::Frame(Opcode::Hello, payload) => match decode_hello_client(&payload) {
            Ok(v) if v == PROTOCOL_VERSION => {
                if !send(&mut stream, Opcode::Hello, &encode_hello_server(session)) {
                    return false;
                }
            }
            Ok(v) => {
                protocol_error(
                    &mut stream,
                    shared,
                    &format!(
                        "protocol version {v} not supported (server speaks {PROTOCOL_VERSION})"
                    ),
                );
                return false;
            }
            Err(e) => {
                protocol_error(&mut stream, shared, &e.to_string());
                return false;
            }
        },
        ReadOutcome::Frame(_, _) => {
            protocol_error(&mut stream, shared, "expected hello as first frame");
            return false;
        }
        ReadOutcome::Violation(msg) => {
            protocol_error(&mut stream, shared, &msg);
            return false;
        }
        ReadOutcome::Closed | ReadOutcome::Shutdown | ReadOutcome::Io => return false,
    }
    if shared.logger.enabled(LogLevel::Info) {
        let peer = stream
            .peer_addr()
            .map(|a| a.to_string())
            .unwrap_or_default();
        shared.logger.log(
            LogLevel::Info,
            "connect",
            format_args!("session={session} peer={peer}"),
        );
    }

    let (reply_tx, reply_rx) = mpsc::channel::<(Opcode, Vec<u8>)>();
    loop {
        match read_session_frame(&mut stream, shared) {
            ReadOutcome::Frame(opcode, payload) => {
                if shared.shutting_down() {
                    let _ = send(
                        &mut stream,
                        Opcode::Error,
                        &encode_error(ErrorCode::ShuttingDown, "server is shutting down"),
                    );
                    return true;
                }
                match opcode {
                    Opcode::Command | Opcode::Query => {
                        let src = match String::from_utf8(payload) {
                            Ok(s) => s,
                            Err(_) => {
                                protocol_error(&mut stream, shared, "non-UTF-8 source");
                                return true;
                            }
                        };
                        // latency bracket: enqueue → reply on the wire
                        let t0 = shared.telemetry.start();
                        let kind = if opcode == Opcode::Command {
                            shared.commands.fetch_add(1, Ordering::Relaxed);
                            ReqKind::Command
                        } else {
                            shared.queries.fetch_add(1, Ordering::Relaxed);
                            ReqKind::Query
                        };
                        match parse_request(kind, &src) {
                            Ok(cmds) => {
                                let batchable = !cmds.is_empty()
                                    && cmds.iter().all(|c| matches!(c, Command::Append { .. }));
                                {
                                    let mut q = lock(&shared.queue);
                                    q.entries.push_back(Entry {
                                        cmds,
                                        batchable,
                                        reply: reply_tx.clone(),
                                    });
                                }
                                shared.telemetry.queue_push();
                                shared.queue_cv.notify_one();
                                // wait for the executor's reply, then put it
                                // on the wire before reading the next frame
                                match wait_reply(&reply_rx, shared) {
                                    Some((op, body)) => {
                                        if !send(&mut stream, op, &body) {
                                            return true;
                                        }
                                        finish_request(shared, opcode, session, t0, &src);
                                    }
                                    None => return true,
                                }
                            }
                            Err(msg) => {
                                shared.engine_errors.fetch_add(1, Ordering::Relaxed);
                                if !send(
                                    &mut stream,
                                    Opcode::Error,
                                    &encode_error(ErrorCode::Engine, &msg),
                                ) {
                                    return true;
                                }
                                finish_request(shared, opcode, session, t0, &src);
                            }
                        }
                    }
                    Opcode::Metrics => {
                        shared.telemetry.count(Opcode::Metrics, session);
                        let engine_json = lock(&shared.engine)
                            .as_ref()
                            .expect("engine present while sessions run")
                            .metrics_json();
                        let json = format!(
                            "{{\"server\":{},\"telemetry\":{},\"engine\":{}}}",
                            shared.stats().to_json(),
                            shared.telemetry.to_json(),
                            engine_json
                        );
                        if !send(&mut stream, Opcode::Metrics, json.as_bytes()) {
                            return true;
                        }
                    }
                    Opcode::MetricsProm => {
                        shared.telemetry.count(Opcode::MetricsProm, session);
                        let text = render_prometheus_all(shared);
                        if !send(&mut stream, Opcode::MetricsProm, text.as_bytes()) {
                            return true;
                        }
                    }
                    Opcode::Shutdown => {
                        shared.telemetry.count(Opcode::Shutdown, session);
                        shared.logger.log(
                            LogLevel::Info,
                            "shutdown",
                            format_args!("session={session}"),
                        );
                        let _ = send(&mut stream, Opcode::Result, &ResultBody::default().encode());
                        shared.request_shutdown();
                        return true;
                    }
                    Opcode::Hello => {
                        protocol_error(&mut stream, shared, "duplicate hello");
                        return true;
                    }
                    Opcode::Result | Opcode::Error => {
                        protocol_error(
                            &mut stream,
                            shared,
                            "result/error frames are server-to-client only",
                        );
                        return true;
                    }
                }
            }
            ReadOutcome::Violation(msg) => {
                protocol_error(&mut stream, shared, &msg);
                return true;
            }
            ReadOutcome::Closed | ReadOutcome::Shutdown | ReadOutcome::Io => return true,
        }
    }
}

/// Record an answered request's latency and, when past the slow-log
/// threshold, log it.
fn finish_request(shared: &Shared, opcode: Opcode, session: u32, t0: Option<Instant>, src: &str) {
    let dur_ns = shared.telemetry.observe(opcode, session, t0, src);
    let threshold = shared.telemetry.slow.threshold_ns();
    if threshold > 0 && dur_ns >= threshold && shared.logger.enabled(LogLevel::Info) {
        let head: String = src.chars().take(crate::telemetry::SLOW_TEXT_CAP).collect();
        shared.logger.log(
            LogLevel::Info,
            "slow_command",
            format_args!(
                "session={session} opcode={} dur_ns={dur_ns} src={head:?}",
                opcode_label(opcode)
            ),
        );
    }
}

/// The `GET /metrics` shim: a fresh connection that starts with `GET `
/// instead of a frame length gets one Prometheus text-exposition response
/// and is closed — enough for `curl` or a Prometheus scrape job, with no
/// HTTP stack. The request head is drained (bounded) and ignored: every
/// path serves the metrics document.
fn serve_http_metrics(stream: &mut TcpStream, session: u32, shared: &Shared) {
    let mut head = Vec::new();
    let mut buf = [0u8; 512];
    let mut idle_polls = 0u32;
    while !head.windows(4).any(|w| w == b"\r\n\r\n") {
        if head.len() > 8192 || idle_polls > 80 {
            return; // oversized or stalled request head: just close
        }
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => head.extend_from_slice(&buf[..n]),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if shared.shutting_down() {
                    return;
                }
                idle_polls += 1;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
    shared.logger.log(
        LogLevel::Info,
        "http_metrics",
        format_args!("session={session}"),
    );
    let body = render_prometheus_all(shared);
    let response = format!(
        "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{}",
        body.len(),
        body
    );
    let _ = stream.write_all(response.as_bytes());
}

/// The full Prometheus exposition: server request counters, batch-size
/// distribution, telemetry families, then the engine's own families.
fn render_prometheus_all(shared: &Shared) -> String {
    use ariel::obs::{write_prom_family, write_prom_metric, write_prom_sample};
    let mut out = String::new();
    let stats = shared.stats();
    write_prom_metric(
        &mut out,
        "ariel_server_sessions_total",
        "counter",
        "Sessions accepted over the server's lifetime.",
        stats.sessions,
    );
    write_prom_metric(
        &mut out,
        "ariel_server_commands_total",
        "counter",
        "Command frames answered.",
        stats.commands,
    );
    write_prom_metric(
        &mut out,
        "ariel_server_queries_total",
        "counter",
        "Query frames answered.",
        stats.queries,
    );
    write_prom_metric(
        &mut out,
        "ariel_server_engine_errors_total",
        "counter",
        "Engine-level errors returned (session kept).",
        stats.engine_errors,
    );
    write_prom_metric(
        &mut out,
        "ariel_server_protocol_errors_total",
        "counter",
        "Protocol violations (connection closed).",
        stats.protocol_errors,
    );
    write_prom_metric(
        &mut out,
        "ariel_server_batches_total",
        "counter",
        "Combined transitions executed (groups, including size-1 groups).",
        stats.batches,
    );
    write_prom_metric(
        &mut out,
        "ariel_server_batched_requests_total",
        "counter",
        "Requests that rode in a group of 2 or more.",
        stats.batched_requests,
    );
    write_prom_metric(
        &mut out,
        "ariel_server_max_batch_entries",
        "gauge",
        "Largest group executed, in entries.",
        stats.max_batch,
    );
    write_prom_family(
        &mut out,
        "ariel_server_batch_groups_total",
        "counter",
        "Executed groups by size bucket (entries per group).",
    );
    for (label, count) in ["1", "2", "3-4", "5-8", "9-16", "17+"]
        .iter()
        .zip(stats.batch_hist.iter())
    {
        write_prom_sample(
            &mut out,
            "ariel_server_batch_groups_total",
            &format!("size=\"{label}\""),
            *count,
        );
    }
    shared.telemetry.render_prometheus(&mut out);
    let engine_prom = lock(&shared.engine)
        .as_ref()
        .expect("engine present while sessions run")
        .metrics_prometheus();
    out.push_str(&engine_prom);
    out
}

/// Block until the executor replies, polling the shutdown flag so a
/// drained-on-shutdown entry cannot strand its reader.
fn wait_reply(
    rx: &mpsc::Receiver<(Opcode, Vec<u8>)>,
    shared: &Shared,
) -> Option<(Opcode, Vec<u8>)> {
    loop {
        match rx.recv_timeout(POLL_QUANTUM) {
            Ok(reply) => return Some(reply),
            Err(mpsc::RecvTimeoutError::Timeout) => {
                // executors drain the queue on shutdown, so a reply (or
                // shutting-down error) is still coming unless they are gone
                if shared.shutting_down() {
                    continue;
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => return None,
        }
    }
}

fn parse_request(kind: ReqKind, src: &str) -> Result<Vec<Command>, String> {
    match kind {
        ReqKind::Command => parse_script(src).map_err(|e| e.to_string()),
        ReqKind::Query => match parse_command(src) {
            Ok(cmd @ Command::Retrieve { .. }) => Ok(vec![cmd]),
            Ok(other) => Err(format!(
                "a query frame must be a `retrieve`, found `{}`",
                other.kind_name()
            )),
            Err(e) => Err(e.to_string()),
        },
    }
}

// ----- executors -----------------------------------------------------------

fn executor_loop(shared: &Shared) {
    loop {
        let group = {
            let mut q = lock(&shared.queue);
            loop {
                if let Some(first) = q.entries.pop_front() {
                    let mut group = vec![first];
                    if group[0].batchable {
                        // coalesce while the queue front stays batchable,
                        // bounded by serve_batch *commands*
                        let mut cmds = group[0].cmds.len();
                        while cmds < shared.serve_batch {
                            match q.entries.front() {
                                Some(e)
                                    if e.batchable && cmds + e.cmds.len() <= shared.serve_batch =>
                                {
                                    let e = q.entries.pop_front().expect("front checked");
                                    cmds += e.cmds.len();
                                    group.push(e);
                                }
                                _ => break,
                            }
                        }
                    }
                    break Some(group);
                }
                if shared.shutting_down() {
                    break None;
                }
                q = shared.queue_cv.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        };
        let Some(group) = group else { return };
        shared.telemetry.queue_pop(group.len() as u64);
        if shared.shutting_down() {
            // drain: answer queued work with a shutting-down error rather
            // than mutating the engine while it is being torn down
            for entry in &group {
                let _ = entry.reply.send((
                    Opcode::Error,
                    encode_error(ErrorCode::ShuttingDown, "server is shutting down"),
                ));
            }
            continue;
        }
        execute_group(shared, &group);
    }
}

/// Run one popped group: a single combined transition for a batch, or the
/// entry's own commands otherwise, and send each entry its reply.
fn execute_group(shared: &Shared, group: &[Entry]) {
    let mut guard = lock(&shared.engine);
    let engine = guard.as_mut().expect("engine present while sessions run");
    {
        let mut b = lock(&shared.batch);
        b.batches += 1;
        b.hist[bucket(group.len())] += 1;
        b.max_batch = b.max_batch.max(group.len() as u64);
        if group.len() > 1 {
            b.batched_requests += group.len() as u64;
        }
    }
    if group.len() > 1 {
        // all batchable: one transition over the concatenated appends
        let all: Vec<Command> = group.iter().flat_map(|e| e.cmds.iter().cloned()).collect();
        shared.logger.log(
            LogLevel::Debug,
            "coalesce",
            format_args!("entries={} commands={}", group.len(), all.len()),
        );
        match engine.execute_transition(&all) {
            Ok(outputs) => {
                // notifications raised by the combined transition go to
                // every session in the group (see module docs)
                let notes = render_notes(engine.drain_notifications());
                let mut off = 0;
                let mut replies = Vec::with_capacity(group.len());
                for entry in group {
                    let outs = &outputs[off..off + entry.cmds.len()];
                    off += entry.cmds.len();
                    let mut body = merge_outputs(outs);
                    body.notes.extend(notes.iter().cloned());
                    replies.push((entry, Ok(body)));
                }
                drop(guard);
                deliver(shared, replies);
            }
            Err(_) => {
                // one bad append must not fail the others: re-run each
                // entry as its own transition
                let mut replies = Vec::with_capacity(group.len());
                for entry in group {
                    let r = engine
                        .execute_transition(&entry.cmds)
                        .map(|outs| {
                            let mut body = merge_outputs(&outs);
                            body.notes = render_notes(engine.drain_notifications());
                            body
                        })
                        .map_err(|e| e.to_string());
                    replies.push((entry, r));
                }
                drop(guard);
                deliver(shared, replies);
            }
        }
    } else {
        let entry = &group[0];
        let r = execute_entry(engine, entry).map(|mut body| {
            body.notes = render_notes(engine.drain_notifications());
            body
        });
        drop(guard);
        deliver(shared, vec![(entry, r)]);
    }
}

/// Execute a single entry: an append-only frame runs as one transition
/// (the batcher's unit, `do…end` semantics); anything else runs command
/// by command exactly like the REPL.
fn execute_entry(engine: &mut Ariel, entry: &Entry) -> Result<ResultBody, String> {
    if entry.batchable {
        return engine
            .execute_transition(&entry.cmds)
            .map(|outs| merge_outputs(&outs))
            .map_err(|e| e.to_string());
    }
    let mut outputs = Vec::with_capacity(entry.cmds.len());
    for cmd in &entry.cmds {
        outputs.push(engine.execute_command(cmd).map_err(|e| e.to_string())?);
    }
    Ok(merge_outputs(&outputs))
}

fn deliver(shared: &Shared, replies: Vec<(&Entry, Result<ResultBody, String>)>) {
    for (entry, result) in replies {
        let frame = match result {
            // downgrades to an `error` frame when the body exceeds the
            // frame cap, so the session survives an oversized retrieve
            Ok(body) => encode_result_frame(&body),
            Err(msg) => {
                shared.engine_errors.fetch_add(1, Ordering::Relaxed);
                (Opcode::Error, encode_error(ErrorCode::Engine, &msg))
            }
        };
        // a dead reader (killed client) just drops the reply; the engine
        // already committed, which is what the kill-mid-batch test checks
        let _ = entry.reply.send(frame);
    }
}

fn render_value(v: &Value) -> String {
    match v {
        Value::Str(s) => s.clone(),
        Value::Sym(sym) => sym.as_str().to_string(),
        other => other.to_string(),
    }
}

fn render_table(columns: &[String], rows: &[Vec<Value>]) -> Table {
    Table {
        columns: columns.to_vec(),
        rows: rows
            .iter()
            .map(|r| r.iter().map(render_value).collect())
            .collect(),
    }
}

fn render_notes(notes: Vec<ariel::Notification>) -> Vec<(String, Table)> {
    notes
        .into_iter()
        .map(|n| (n.channel, render_table(&n.columns, &n.rows)))
        .collect()
}

/// Merge per-command outputs into one reply body (changes summed, last
/// result table wins — the REPL prints the same way).
fn merge_outputs(outputs: &[CmdOutput]) -> ResultBody {
    let mut body = ResultBody::default();
    for out in outputs {
        body.changes += out.changes.len() as u32;
        if !out.columns.is_empty() {
            body.table = render_table(&out.columns, &out.rows);
        }
        for n in &out.notifications {
            body.notes
                .push((n.channel.clone(), render_table(&n.columns, &n.rows)));
        }
    }
    body
}

// `Ariel` must cross into the server's threads; this fails to compile if
// a non-`Send` type sneaks back into the engine (see docs/CONCURRENCY.md).
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Ariel>();
    assert_send::<Server>();
};
