//! Server telemetry: per-opcode and per-session request counters and
//! latency histograms, queue-depth gauges, a bounded slow-command log,
//! and a leveled key=value logger — the production instruments the wire
//! protocol's `metrics`/`metrics-prom` frames and the `GET /metrics`
//! HTTP shim expose (see `docs/OBSERVABILITY.md`, "Server & WAL
//! telemetry").
//!
//! Everything here is designed to stay out of the request path's way:
//!
//! * per-opcode stats are a fixed array of relaxed atomics
//!   ([`ariel::islist::Counter`] / [`ariel::islist::Histogram`]) — no
//!   lock, no allocation;
//! * per-session stats live in a small number of mutex *shards* keyed by
//!   `session_id % N`, so concurrent sessions rarely contend;
//! * the slow-command log takes one short mutex only for commands that
//!   beat the current threshold;
//! * with telemetry disabled ([`Telemetry::start`] returns `None`) the
//!   request path performs no clock reads and no recording at all, and a
//!   [`Logger`] at [`LogLevel::Off`] allocates nothing — the
//!   `bench_gate obs` CI gate holds the telemetry-on overhead under 10%.

use crate::protocol::Opcode;
use ariel::islist::{Counter, Histogram};
use std::fmt;
use std::io::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Wall-clock milliseconds since the UNIX epoch (0 if the clock is
/// before the epoch).
fn unix_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Escape a string into the body of a JSON string literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

// ----- logging ---------------------------------------------------------------

/// Log verbosity, most to least quiet. `--log-level` on the CLI.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum LogLevel {
    /// No logging at all — the default. Call sites allocate nothing.
    #[default]
    Off,
    /// Failures only.
    Error,
    /// Connection lifecycle, checkpoints, recovery, shutdown, slow
    /// commands.
    Info,
    /// Everything, including per-group batch-coalescing decisions.
    Debug,
}

impl LogLevel {
    /// Parse a `--log-level` argument.
    pub fn parse(s: &str) -> Option<LogLevel> {
        match s {
            "off" => Some(LogLevel::Off),
            "error" => Some(LogLevel::Error),
            "info" => Some(LogLevel::Info),
            "debug" => Some(LogLevel::Debug),
            _ => None,
        }
    }

    /// Canonical spelling (the accepted `--log-level` values).
    pub fn as_str(&self) -> &'static str {
        match self {
            LogLevel::Off => "off",
            LogLevel::Error => "error",
            LogLevel::Info => "info",
            LogLevel::Debug => "debug",
        }
    }
}

enum Sink {
    Stderr,
    File(Mutex<std::fs::File>),
}

/// Line-oriented `key=value` structured logger.
///
/// Each line is `ts=<unix_ms> level=<level> event=<event> <fields>`. The
/// level check happens before any formatting, so a disabled logger (or a
/// call above the configured level) costs one branch: `format_args!` at
/// the call site builds a stack descriptor, never a `String`.
pub struct Logger {
    level: LogLevel,
    sink: Sink,
}

impl Logger {
    /// A logger that drops everything ([`LogLevel::Off`]).
    pub fn off() -> Logger {
        Logger {
            level: LogLevel::Off,
            sink: Sink::Stderr,
        }
    }

    /// Log to stderr at `level`.
    pub fn stderr(level: LogLevel) -> Logger {
        Logger {
            level,
            sink: Sink::Stderr,
        }
    }

    /// Log to (append) `path` at `level`.
    pub fn file(level: LogLevel, path: &std::path::Path) -> std::io::Result<Logger> {
        let f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(Logger {
            level,
            sink: Sink::File(Mutex::new(f)),
        })
    }

    /// Would a record at `level` be written?
    #[inline]
    pub fn enabled(&self, level: LogLevel) -> bool {
        level != LogLevel::Off && level <= self.level
    }

    /// Write one record. `fields` is the pre-formatted `key=value` tail
    /// (`format_args!` at the call site — free unless the level is
    /// enabled).
    pub fn log(&self, level: LogLevel, event: &str, fields: fmt::Arguments<'_>) {
        if !self.enabled(level) {
            return;
        }
        let line = format!(
            "ts={} level={} event={event} {fields}\n",
            unix_ms(),
            level.as_str()
        );
        match &self.sink {
            Sink::Stderr => {
                let _ = std::io::stderr().write_all(line.as_bytes());
            }
            Sink::File(f) => {
                let _ = lock(f).write_all(line.as_bytes());
            }
        }
    }
}

// ----- slow-command log ------------------------------------------------------

/// One captured slow command.
#[derive(Debug, Clone)]
pub struct SlowEntry {
    /// Session that sent it.
    pub session: u32,
    /// Frame kind (`command` or `query`).
    pub opcode: Opcode,
    /// Request latency (enqueue to reply ready), nanoseconds.
    pub dur_ns: u64,
    /// Wall-clock capture time, milliseconds since the UNIX epoch.
    pub wall_ms: u64,
    /// Rendered ARL source, truncated to [`SLOW_TEXT_CAP`] bytes.
    pub text: String,
}

/// Longest command text a slow-log entry keeps.
pub const SLOW_TEXT_CAP: usize = 128;

/// Bounded keep-the-N-slowest command log.
///
/// `record` is called for every timed request; entries below
/// `threshold_ns` are ignored, and once `capacity` entries are held a new
/// entry must beat the current minimum to displace it — so the log always
/// holds the `capacity` slowest commands seen (at or above the
/// threshold), newest-first within equal durations.
pub struct SlowLog {
    threshold_ns: u64,
    capacity: usize,
    entries: Mutex<Vec<SlowEntry>>,
}

impl SlowLog {
    /// New log keeping the `capacity` slowest commands at or above
    /// `threshold_ns` (0 = every timed command competes).
    pub fn new(capacity: usize, threshold_ns: u64) -> SlowLog {
        SlowLog {
            threshold_ns,
            capacity,
            entries: Mutex::new(Vec::new()),
        }
    }

    /// The configured threshold in nanoseconds.
    pub fn threshold_ns(&self) -> u64 {
        self.threshold_ns
    }

    /// Offer one timed command. Returns `true` if it was kept.
    pub fn record(&self, session: u32, opcode: Opcode, dur_ns: u64, text: &str) -> bool {
        if dur_ns < self.threshold_ns || self.capacity == 0 {
            return false;
        }
        let mut entries = lock(&self.entries);
        if entries.len() >= self.capacity {
            let (mi, min) = entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.dur_ns)
                .map(|(i, e)| (i, e.dur_ns))
                .expect("capacity > 0");
            if dur_ns <= min {
                return false;
            }
            entries.swap_remove(mi);
        }
        let mut text: String = text.chars().take(SLOW_TEXT_CAP).collect();
        if text.len() < text.capacity() {
            text.shrink_to_fit();
        }
        entries.push(SlowEntry {
            session,
            opcode,
            dur_ns,
            wall_ms: unix_ms(),
            text,
        });
        true
    }

    /// Snapshot of the held entries, slowest first.
    pub fn entries(&self) -> Vec<SlowEntry> {
        let mut out = lock(&self.entries).clone();
        out.sort_by_key(|e| std::cmp::Reverse(e.dur_ns));
        out
    }

    /// Forget everything.
    pub fn clear(&self) {
        lock(&self.entries).clear();
    }

    /// Render the log as a JSON array, slowest first (the `"slowlog"`
    /// section of the metrics frame; schema in `docs/OBSERVABILITY.md`).
    pub fn to_json(&self) -> String {
        let mut s = String::from("[");
        for (i, e) in self.entries().iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"session\":{},\"opcode\":\"{}\",\"dur_ns\":{},\"wall_ms\":{},\"text\":\"{}\"}}",
                e.session,
                opcode_label(e.opcode),
                e.dur_ns,
                e.wall_ms,
                json_escape(&e.text),
            ));
        }
        s.push(']');
        s
    }
}

/// Stable lower-case label for an opcode (Prometheus label values and
/// slow-log JSON).
pub fn opcode_label(op: Opcode) -> &'static str {
    match op {
        Opcode::Hello => "hello",
        Opcode::Command => "command",
        Opcode::Query => "query",
        Opcode::Result => "result",
        Opcode::Error => "error",
        Opcode::Metrics => "metrics",
        Opcode::Shutdown => "shutdown",
        Opcode::MetricsProm => "metrics-prom",
    }
}

// ----- telemetry -------------------------------------------------------------

/// Highest opcode byte + 1 (the per-opcode stats array size).
const OPCODES: usize = 9;

/// Session-id shards for the per-session map.
const SESSION_SHARDS: usize = 8;

#[derive(Default)]
struct OpStat {
    count: Counter,
    latency_ns: Histogram,
}

/// Per-session request figures.
#[derive(Default)]
struct SessionStat {
    requests: u64,
    latency_ns: Histogram,
}

/// The server's telemetry store. All methods take `&self`; the store is
/// shared by reference across reader and executor threads.
pub struct Telemetry {
    enabled: bool,
    per_opcode: [OpStat; OPCODES],
    sessions: [Mutex<std::collections::BTreeMap<u32, SessionStat>>; SESSION_SHARDS],
    queue_depth: AtomicU64,
    queue_high_water: AtomicU64,
    /// The slow-command log (see [`SlowLog`]).
    pub slow: SlowLog,
}

impl Telemetry {
    /// New store. With `enabled` false every recording method is a no-op
    /// and [`Telemetry::start`] never reads the clock.
    pub fn new(enabled: bool, slow_capacity: usize, slow_threshold_ns: u64) -> Telemetry {
        Telemetry {
            enabled,
            per_opcode: Default::default(),
            sessions: Default::default(),
            queue_depth: AtomicU64::new(0),
            queue_high_water: AtomicU64::new(0),
            slow: SlowLog::new(slow_capacity, slow_threshold_ns),
        }
    }

    /// Whether recording is on.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Begin timing a request: `Some(now)` when enabled, `None` (no clock
    /// read) when disabled. Pass the result to [`Telemetry::observe`].
    #[inline]
    pub fn start(&self) -> Option<Instant> {
        if self.enabled {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Count an untimed frame (metrics/shutdown/hello).
    #[inline]
    pub fn count(&self, opcode: Opcode, session: u32) {
        if !self.enabled {
            return;
        }
        self.per_opcode[opcode as usize].count.add(1);
        let shard = &self.sessions[(session as usize) % SESSION_SHARDS];
        lock(shard).entry(session).or_default().requests += 1;
    }

    /// Finish timing a request started with [`Telemetry::start`]:
    /// records the per-opcode and per-session latency and offers the
    /// command to the slow log. No-op when `t0` is `None`.
    pub fn observe(&self, opcode: Opcode, session: u32, t0: Option<Instant>, text: &str) -> u64 {
        let Some(t0) = t0 else { return 0 };
        let dur_ns = t0.elapsed().as_nanos() as u64;
        let stat = &self.per_opcode[opcode as usize];
        stat.count.add(1);
        stat.latency_ns.record(dur_ns);
        {
            let shard = &self.sessions[(session as usize) % SESSION_SHARDS];
            let mut map = lock(shard);
            let s = map.entry(session).or_default();
            s.requests += 1;
            s.latency_ns.record(dur_ns);
        }
        self.slow.record(session, opcode, dur_ns, text);
        dur_ns
    }

    /// A request entered the executor queue.
    #[inline]
    pub fn queue_push(&self) {
        if !self.enabled {
            return;
        }
        let depth = self.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.queue_high_water.fetch_max(depth, Ordering::Relaxed);
    }

    /// `n` requests left the executor queue.
    #[inline]
    pub fn queue_pop(&self, n: u64) {
        if !self.enabled {
            return;
        }
        // saturating: a pop can race a concurrent snapshot, never go negative
        let mut cur = self.queue_depth.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(n);
            match self.queue_depth.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current executor-queue depth.
    pub fn queue_depth(&self) -> u64 {
        self.queue_depth.load(Ordering::Relaxed)
    }

    /// High-water mark of the executor-queue depth.
    pub fn queue_high_water(&self) -> u64 {
        self.queue_high_water.load(Ordering::Relaxed)
    }

    /// Sessions with recorded activity.
    pub fn sessions_observed(&self) -> u64 {
        self.sessions.iter().map(|s| lock(s).len() as u64).sum()
    }

    /// Render the `"telemetry"` section of the metrics frame: per-opcode
    /// counters and latency histograms, per-session request figures,
    /// queue gauges, and the slow log.
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"enabled\":{},\"queue_depth\":{},\"queue_high_water\":{},\"opcodes\":{{",
            self.enabled,
            self.queue_depth(),
            self.queue_high_water(),
        );
        let mut first = true;
        for (b, stat) in self.per_opcode.iter().enumerate() {
            if stat.count.get() == 0 {
                continue;
            }
            let Some(op) = Opcode::from_u8(b as u8) else {
                continue;
            };
            if !first {
                s.push(',');
            }
            first = false;
            s.push_str(&format!(
                "\"{}\":{{\"count\":{},\"latency_ns\":{}}}",
                opcode_label(op),
                stat.count.get(),
                stat.latency_ns.to_json(),
            ));
        }
        s.push_str("},\"sessions\":{");
        let mut first = true;
        for shard in &self.sessions {
            for (id, stat) in lock(shard).iter() {
                if !first {
                    s.push(',');
                }
                first = false;
                s.push_str(&format!(
                    "\"{id}\":{{\"requests\":{},\"mean_ns\":{},\"p99_ns\":{}}}",
                    stat.requests,
                    stat.latency_ns.mean(),
                    stat.latency_ns.approx_quantile(99),
                ));
            }
        }
        s.push_str("},\"slowlog\":");
        s.push_str(&self.slow.to_json());
        s.push('}');
        s
    }

    /// Append the `ariel_server_*` Prometheus families for this store:
    /// per-opcode request counters and latency histograms, per-session
    /// request counters, and the queue gauges.
    pub fn render_prometheus(&self, out: &mut String) {
        use ariel::obs::{
            write_prom_family, write_prom_histogram, write_prom_metric, write_prom_sample,
        };
        write_prom_metric(
            out,
            "ariel_server_queue_depth",
            "gauge",
            "Requests waiting in the executor queue.",
            self.queue_depth(),
        );
        write_prom_metric(
            out,
            "ariel_server_queue_high_water",
            "gauge",
            "High-water mark of the executor queue depth.",
            self.queue_high_water(),
        );
        write_prom_metric(
            out,
            "ariel_server_sessions_observed",
            "gauge",
            "Sessions with recorded request activity.",
            self.sessions_observed(),
        );
        write_prom_metric(
            out,
            "ariel_server_slow_commands",
            "gauge",
            "Entries currently held by the slow-command log.",
            self.slow.entries().len() as u64,
        );
        write_prom_family(
            out,
            "ariel_server_requests_total",
            "counter",
            "Frames handled, by opcode.",
        );
        for (b, stat) in self.per_opcode.iter().enumerate() {
            if stat.count.get() == 0 {
                continue;
            }
            if let Some(op) = Opcode::from_u8(b as u8) {
                write_prom_sample(
                    out,
                    "ariel_server_requests_total",
                    &format!("opcode=\"{}\"", opcode_label(op)),
                    stat.count.get(),
                );
            }
        }
        write_prom_family(
            out,
            "ariel_server_request_duration_ns",
            "histogram",
            "Request latency (enqueue to reply ready) by opcode, in nanoseconds.",
        );
        for (b, stat) in self.per_opcode.iter().enumerate() {
            if stat.latency_ns.count() == 0 {
                continue;
            }
            if let Some(op) = Opcode::from_u8(b as u8) {
                write_prom_histogram(
                    out,
                    "ariel_server_request_duration_ns",
                    &format!("opcode=\"{}\"", opcode_label(op)),
                    &stat.latency_ns,
                );
            }
        }
        write_prom_family(
            out,
            "ariel_server_session_requests_total",
            "counter",
            "Requests handled per session.",
        );
        for shard in &self.sessions {
            for (id, stat) in lock(shard).iter() {
                write_prom_sample(
                    out,
                    "ariel_server_session_requests_total",
                    &format!("session=\"{id}\""),
                    stat.requests,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_levels_parse_and_order() {
        assert_eq!(LogLevel::parse("off"), Some(LogLevel::Off));
        assert_eq!(LogLevel::parse("debug"), Some(LogLevel::Debug));
        assert_eq!(LogLevel::parse("verbose"), None);
        assert!(LogLevel::Error < LogLevel::Info);
        let l = Logger::stderr(LogLevel::Info);
        assert!(l.enabled(LogLevel::Error));
        assert!(l.enabled(LogLevel::Info));
        assert!(!l.enabled(LogLevel::Debug));
        // Off is never "enabled", even on a debug logger
        assert!(!Logger::stderr(LogLevel::Debug).enabled(LogLevel::Off));
        assert!(!Logger::off().enabled(LogLevel::Error));
    }

    #[test]
    fn logger_writes_key_value_lines_to_file() {
        let path = std::env::temp_dir().join(format!("ariel-log-{}.log", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let l = Logger::file(LogLevel::Info, &path).unwrap();
        l.log(LogLevel::Info, "connect", format_args!("session=7"));
        l.log(LogLevel::Debug, "batch", format_args!("entries=3")); // filtered
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 1, "{text}");
        let line = text.lines().next().unwrap();
        assert!(line.contains("level=info"), "{line}");
        assert!(line.contains("event=connect"), "{line}");
        assert!(line.contains("session=7"), "{line}");
        assert!(line.starts_with("ts="), "{line}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn slow_log_keeps_the_n_slowest() {
        let log = SlowLog::new(3, 100);
        assert!(!log.record(1, Opcode::Command, 50, "below threshold"));
        for (i, ns) in [200u64, 300, 400, 250, 500].iter().enumerate() {
            log.record(i as u32, Opcode::Command, *ns, &format!("cmd {ns}"));
        }
        let entries = log.entries();
        let durs: Vec<u64> = entries.iter().map(|e| e.dur_ns).collect();
        assert_eq!(durs, vec![500, 400, 300], "keeps the slowest, sorted");
        // a duplicate of the minimum does not displace it
        assert!(!log.record(9, Opcode::Query, 300, "tie"));
        log.clear();
        assert!(log.entries().is_empty());
    }

    #[test]
    fn slow_log_truncates_text_and_escapes_json() {
        let log = SlowLog::new(2, 0);
        let long = "x".repeat(500);
        log.record(1, Opcode::Command, 10, &long);
        log.record(2, Opcode::Query, 20, "say \"hi\"\n");
        let entries = log.entries();
        assert_eq!(entries[1].text.len(), SLOW_TEXT_CAP);
        let json = log.to_json();
        assert!(json.starts_with('[') && json.ends_with(']'), "{json}");
        assert!(json.contains("\\\"hi\\\"\\n"), "{json}");
        assert!(json.contains("\"opcode\":\"query\""), "{json}");
    }

    #[test]
    fn telemetry_disabled_records_nothing() {
        let t = Telemetry::new(false, 8, 0);
        assert!(t.start().is_none(), "no clock read when disabled");
        t.count(Opcode::Metrics, 1);
        t.queue_push();
        assert_eq!(t.queue_depth(), 0);
        assert_eq!(t.sessions_observed(), 0);
        assert_eq!(t.observe(Opcode::Command, 1, None, "append"), 0);
        let json = t.to_json();
        assert!(json.contains("\"enabled\":false"), "{json}");
        assert!(json.contains("\"opcodes\":{}"), "{json}");
    }

    #[test]
    fn telemetry_records_per_opcode_and_session() {
        let t = Telemetry::new(true, 8, 0);
        let t0 = t.start();
        assert!(t0.is_some());
        let dur = t.observe(Opcode::Command, 3, t0, "append kv (k = 1)");
        assert!(dur > 0);
        t.observe(Opcode::Query, 3, t.start(), "retrieve (kv.all)");
        t.observe(Opcode::Command, 11, t.start(), "append kv (k = 2)");
        t.count(Opcode::Metrics, 3);
        assert_eq!(t.sessions_observed(), 2);
        t.queue_push();
        t.queue_push();
        t.queue_pop(1);
        assert_eq!(t.queue_depth(), 1);
        assert_eq!(t.queue_high_water(), 2);
        t.queue_pop(5);
        assert_eq!(t.queue_depth(), 0, "pop saturates at zero");
        let json = t.to_json();
        assert!(json.contains("\"command\":{\"count\":2"), "{json}");
        assert!(json.contains("\"query\":{\"count\":1"), "{json}");
        assert!(json.contains("\"metrics\":{\"count\":1"), "{json}");
        assert!(json.contains("\"3\":{\"requests\":3"), "{json}");
        assert!(json.contains("\"slowlog\":["), "{json}");
        let mut prom = String::new();
        t.render_prometheus(&mut prom);
        assert!(
            prom.contains("ariel_server_requests_total{opcode=\"command\"} 2"),
            "{prom}"
        );
        assert!(
            prom.contains("ariel_server_request_duration_ns_count{opcode=\"query\"} 1"),
            "{prom}"
        );
        assert!(
            prom.contains("ariel_server_session_requests_total{session=\"11\"} 1"),
            "{prom}"
        );
    }
}
