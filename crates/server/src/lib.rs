//! # ariel-server
//!
//! A TCP front-end for the Ariel active DBMS: a hand-rolled
//! length-prefixed binary protocol (blocking I/O, no async runtime), a
//! session manager that multiplexes any number of client connections
//! onto one engine through the `scoped-pool` workers, and per-transition
//! **write batching** — consecutive append-only requests from different
//! sessions coalesce into a single transition, handing
//! `Network::process_batch` the long positive token runs the parallel
//! match path carves into jobs (see `docs/SERVER.md` and
//! `docs/CONCURRENCY.md`).
//!
//! ```
//! use ariel::Ariel;
//! use ariel_server::{Client, Server, ServerOptions};
//!
//! let server = Server::bind("127.0.0.1:0", Ariel::new(), ServerOptions::default()).unwrap();
//! let addr = server.local_addr();
//! let handle = server.spawn();
//!
//! let mut client = Client::connect(addr).unwrap();
//! client.command("create kv (k = int, v = int)").unwrap();
//! client.command("append kv (k = 1, v = 10)").unwrap();
//! let reply = client.query("retrieve (kv.all)").unwrap();
//! assert_eq!(reply.table.rows.len(), 1);
//!
//! let (stats, _engine) = handle.shutdown();
//! assert_eq!(stats.sessions, 1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod client;
pub mod protocol;
pub mod server;
pub mod telemetry;

pub use client::{Client, ClientError};
pub use protocol::{
    ErrorCode, Frame, FrameError, Opcode, ResultBody, Table, MAX_FRAME_LEN, PROTOCOL_VERSION,
};
pub use server::{BindError, Server, ServerHandle, ServerOptions, ServerStats, BATCH_BUCKETS};
pub use telemetry::{LogLevel, Logger, SlowEntry, SlowLog, Telemetry};
